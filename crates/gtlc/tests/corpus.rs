//! A golden corpus for the GTLC front end: programs that must
//! compile (with the expected type and outcome), programs that must be
//! rejected statically, and syntax that must fail to parse with a
//! sensible message.

use bc_gtlc::compile;
use bc_lambda_b::eval::{run, Outcome};
use bc_lambda_b::Term;
use bc_syntax::Type;

fn eval_ok(src: &str) -> (Type, Outcome) {
    let p = compile(src).unwrap_or_else(|e| panic!("{src:?} failed:\n{}", e.render(src)));
    let out = run(&p.term, 2_000_000).expect("well typed").outcome;
    (p.ty, out)
}

#[track_caller]
fn expect_int(src: &str, expected: i64) {
    let (_, out) = eval_ok(src);
    match out {
        Outcome::Value(Term::Const(k)) => assert_eq!(k.as_int(), Some(expected), "{src}"),
        // Dynamic results come back injected.
        Outcome::Value(Term::Cast(inner, _)) => match &*inner {
            Term::Const(k) => assert_eq!(k.as_int(), Some(expected), "{src}"),
            other => panic!("{src}: unexpected payload {other}"),
        },
        other => panic!("{src}: unexpected outcome {other:?}"),
    }
}

#[track_caller]
fn expect_bool(src: &str, expected: bool) {
    let (_, out) = eval_ok(src);
    match out {
        Outcome::Value(Term::Const(k)) => assert_eq!(k.as_bool(), Some(expected), "{src}"),
        Outcome::Value(Term::Cast(inner, _)) => match &*inner {
            Term::Const(k) => assert_eq!(k.as_bool(), Some(expected), "{src}"),
            other => panic!("{src}: unexpected payload {other}"),
        },
        other => panic!("{src}: unexpected outcome {other:?}"),
    }
}

#[track_caller]
fn expect_blame(src: &str) {
    let (_, out) = eval_ok(src);
    assert!(matches!(out, Outcome::Blame(_)), "{src}: got {out:?}");
}

#[test]
fn arithmetic_and_precedence() {
    expect_int("1 + 2 * 3", 7);
    expect_int("(1 + 2) * 3", 9);
    expect_int("10 - 3 - 2", 5); // left associative
    expect_int("7 quot 2", 3);
    expect_int("7 rem 2", 1);
    expect_int("- 5 + 8", 3);
    expect_bool("1 < 2", true);
    expect_bool("2 <= 2", true);
    expect_bool("1 = 2", false);
    expect_bool("not (1 = 2)", true);
    expect_bool("true and not false", true);
    expect_bool("false or true", true);
}

#[test]
fn functions_and_closures() {
    expect_int("(fun (x : Int) => x + 1) 41", 42);
    expect_int(
        "let add = fun (a : Int) => fun (b : Int) => a + b in add 40 2",
        42,
    );
    expect_int(
        "let compose = fun (f : Int -> Int) => fun (g : Int -> Int) => fun (x : Int) => f (g x) in \
         compose (fun (a : Int) => a * 2) (fun (b : Int) => b + 1) 20",
        42,
    );
}

#[test]
fn recursion() {
    expect_int(
        "letrec fact (n : Int) : Int = if n <= 1 then 1 else n * fact (n - 1) in fact 10",
        3_628_800,
    );
    expect_int(
        "letrec fib (n : Int) : Int = \
           if n < 2 then n else fib (n - 1) + fib (n - 2) \
         in fib 15",
        610,
    );
    expect_bool(
        "letrec even (n : Int) : Bool = \
           if n = 0 then true else if n = 1 then false else even (n - 2) \
         in even 1000",
        true,
    );
}

#[test]
fn gradual_boundaries() {
    // Fully dynamic code works.
    expect_int("let f = fun x => x + 1 in (f 41 : Int)", 42);
    // Dynamic values flow through typed code via consistency.
    expect_int("let x = (41 : ?) in (x : Int) + 1", 42);
    // Higher-order boundary crossing.
    expect_int(
        "let apply = fun (f : ?) => (f : Int -> Int) 20 in \
         apply ((fun x => x + 22) : ?)",
        42,
    );
    // Deep wrapping preserves behaviour.
    expect_int(
        "let id = fun (x : Int) => x in \
         let w = fun (f : ?) => (f : Int -> Int) in \
         w (w (w (id : ?))) 42",
        42,
    );
}

#[test]
fn run_time_blame() {
    expect_blame("let f = fun x => x + 1 in f true");
    expect_blame("((true : ?) : Int)");
    expect_blame("let f = ((fun x => true) : ?) in (f : Int -> Int) 1 + 1");
    // Blame through a higher-order wrapper: argument side.
    expect_blame(
        "let g = fun (f : ? -> ?) => f 1 in \
         (g ((fun (b : Bool) => b) : ? -> ?) : Bool)",
    );
}

#[test]
fn static_rejections() {
    for bad in [
        "1 + true",
        "true + 1",
        "if 1 then 2 else 3",
        "if true then 1 else false",
        "(fun (x : Int) => x) true",
        "(true : Int)",
        "x + 1",
        "1 2",
        "let f = fun (x : Int) => x in f (fun y => y)",
    ] {
        assert!(compile(bad).is_err(), "{bad:?} should be rejected");
    }
}

#[test]
fn parse_errors_have_useful_messages() {
    for (bad, needle) in [
        ("1 +", "expected an expression"),
        ("fun => 1", "expected a parameter"),
        ("let x 1 in x", "expected"),
        ("if true then 1", "expected `else`"),
        ("(1", "expected `)`"),
        ("fun (x : ) => x", "expected a type"),
        ("1 < 2 < 3", "expected end of input"),
    ] {
        let err = compile(bad).expect_err(bad);
        assert!(
            err.message.contains(needle),
            "{bad:?}: message {:?} lacks {needle:?}",
            err.message
        );
    }
}

#[test]
fn comments_and_whitespace() {
    expect_int(
        "-- leading comment\n\
         let x = 1 in -- trailing comment\n\
         x + 1  -- final",
        2,
    );
}

#[test]
fn types_are_reported() {
    let (ty, _) = eval_ok("fun (x : Int) => x");
    assert_eq!(ty, Type::fun(Type::INT, Type::INT));
    let (ty, _) = eval_ok("fun x => x");
    assert_eq!(ty, Type::fun(Type::DYN, Type::DYN));
    let (ty, _) = eval_ok("(1 : ?)");
    assert_eq!(ty, Type::DYN);
}

#[test]
fn shadowing() {
    expect_int("let x = 1 in let x = x + 1 in x * 10", 20);
    expect_int("(fun (x : Int) => (fun (x : Int) => x) (x + 1)) 1", 2);
}
