//! Coercions `c, d ::= id_A | G! | G?p | c → d | c ; d | ⊥GpH` with
//! their typing rules `c : A ⇒ B`, height, and blame safety
//! (Figure 3).

use std::fmt;
use std::rc::Rc;

use bc_syntax::{Ground, Label, TNode, Type, TypeArena, TypeId};

/// A coercion of the coercion calculus.
///
/// The typing rules follow Henglein (1994); the projection `G?p`
/// carries a blame label (as in Siek–Wadler 2010), and `⊥GpH`
/// represents a failed coercion from ground type `G` to ground type
/// `H` (similar to `Fail` in Herman et al.).
#[derive(Debug, Clone, PartialEq)]
pub enum Coercion {
    /// The identity coercion `id_A : A ⇒ A`.
    Id(Type),
    /// An injection `G! : G ⇒ ?`.
    Inj(Ground),
    /// A projection `G?p : ? ⇒ G`, blaming `p` on failure.
    Proj(Ground, Label),
    /// A function coercion `c → d : A→B ⇒ A'→B'` with `c : A' ⇒ A`
    /// (contravariant) and `d : B ⇒ B'` (covariant).
    Fun(Rc<Coercion>, Rc<Coercion>),
    /// A composition `c ; d : A ⇒ C` with `c : A ⇒ B`, `d : B ⇒ C`.
    Seq(Rc<Coercion>, Rc<Coercion>),
    /// The failure `⊥GpH : A ⇒ B`, requiring `A ≠ ?`, `A ∼ G`, and
    /// `G ≠ H`. Blames `p` when reached.
    Fail(Ground, Label, Ground),
}

impl Coercion {
    /// The identity coercion at type `A`.
    pub fn id(ty: Type) -> Coercion {
        Coercion::Id(ty)
    }

    /// The injection `G!`.
    pub fn inj(g: Ground) -> Coercion {
        Coercion::Inj(g)
    }

    /// The projection `G?p`.
    pub fn proj(g: Ground, p: Label) -> Coercion {
        Coercion::Proj(g, p)
    }

    /// The function coercion `self → cod`.
    pub fn fun(dom: Coercion, cod: Coercion) -> Coercion {
        Coercion::Fun(Rc::new(dom), Rc::new(cod))
    }

    /// The composition `self ; next` (diagrammatic order).
    #[must_use]
    pub fn seq(self, next: Coercion) -> Coercion {
        Coercion::Seq(Rc::new(self), Rc::new(next))
    }

    /// The failure coercion `⊥GpH`.
    ///
    /// # Panics
    ///
    /// Panics if `G = H` (the typing rule requires `G ≠ H`).
    pub fn fail(g: Ground, p: Label, h: Ground) -> Coercion {
        assert_ne!(g, h, "⊥GpH requires G ≠ H");
        Coercion::Fail(g, p, h)
    }

    /// Synthesises the unique type `c : A ⇒ B` of a coercion that does
    /// not contain `⊥`. Returns `None` when the coercion contains a
    /// failure (whose end types are unconstrained) or is ill-typed.
    pub fn synthesize(&self) -> Option<(Type, Type)> {
        match self {
            Coercion::Id(a) => Some((a.clone(), a.clone())),
            Coercion::Inj(g) => Some((g.ty(), Type::Dyn)),
            Coercion::Proj(g, _) => Some((Type::Dyn, g.ty())),
            Coercion::Fun(c, d) => {
                // c : A' ⇒ A, d : B ⇒ B'  gives  c→d : A→B ⇒ A'→B'.
                let (a_prime, a) = c.synthesize()?;
                let (b, b_prime) = d.synthesize()?;
                Some((Type::fun(a, b), Type::fun(a_prime, b_prime)))
            }
            Coercion::Seq(c, d) => {
                let (a, b) = c.synthesize()?;
                let (b2, c2) = d.synthesize()?;
                if b == b2 {
                    Some((a, c2))
                } else {
                    None
                }
            }
            Coercion::Fail(_, _, _) => None,
        }
    }

    /// Checks the typing judgment `c : A ⇒ B`.
    pub fn check(&self, source: &Type, target: &Type) -> bool {
        self.check_opt(Some(source), Some(target))
    }

    /// Checks typing with optional endpoint constraints (`None` means
    /// "there exists a type"). Needed because `⊥GpH : A ⇒ B` leaves
    /// `B` unconstrained, so compositions containing `⊥` do not have
    /// unique types.
    fn check_opt(&self, source: Option<&Type>, target: Option<&Type>) -> bool {
        match self {
            Coercion::Id(a) => source.is_none_or(|s| s == a) && target.is_none_or(|t| t == a),
            Coercion::Inj(g) => {
                source.is_none_or(|s| *s == g.ty()) && target.is_none_or(|t| t.is_dyn())
            }
            Coercion::Proj(g, _) => {
                source.is_none_or(|s| s.is_dyn()) && target.is_none_or(|t| *t == g.ty())
            }
            Coercion::Fun(c, d) => {
                let (a, b) = match source {
                    Some(Type::Fun(a, b)) => (Some(&**a), Some(&**b)),
                    Some(_) => return false,
                    None => (None, None),
                };
                let (a2, b2) = match target {
                    Some(Type::Fun(a2, b2)) => (Some(&**a2), Some(&**b2)),
                    Some(_) => return false,
                    None => (None, None),
                };
                c.check_opt(a2, a) && d.check_opt(b, b2)
            }
            Coercion::Seq(c, d) => {
                if let Some((a, b)) = c.synthesize() {
                    source.is_none_or(|s| *s == a) && d.check_opt(Some(&b), target)
                } else if let Some((b, c2)) = d.synthesize() {
                    target.is_none_or(|t| *t == c2) && c.check_opt(source, Some(&b))
                } else {
                    // Both sides contain ⊥: the intermediate type is
                    // existentially quantified and a witness always
                    // exists (the ground type demanded by `d`).
                    c.check_opt(source, None) && d.check_opt(None, target)
                }
            }
            Coercion::Fail(g, _, h) => {
                g != h
                    && source.is_none_or(|s| !s.is_dyn() && s.compatible(&g.ty()))
                    && target.is_none_or(|_| true)
            }
        }
    }

    /// A *representative* source type for this coercion: a type `A`
    /// such that `c : A ⇒ B` holds for some `B`. For failure-free
    /// coercions this is the unique source; `⊥GpH` contributes its
    /// named ground `G` where the true source is unconstrained.
    pub fn source_representative(&self) -> Type {
        match self {
            Coercion::Id(a) => a.clone(),
            Coercion::Inj(g) | Coercion::Fail(g, _, _) => g.ty(),
            Coercion::Proj(_, _) => Type::Dyn,
            Coercion::Seq(c1, _) => c1.source_representative(),
            Coercion::Fun(c, d) => Type::fun(c.target_representative(), d.source_representative()),
        }
    }

    /// A *representative* target type (see
    /// [`Coercion::source_representative`]); `⊥GpH` contributes its
    /// named ground `H` where the true target is unconstrained.
    pub fn target_representative(&self) -> Type {
        match self {
            Coercion::Id(a) => a.clone(),
            Coercion::Inj(_) => Type::Dyn,
            Coercion::Proj(g, _) => g.ty(),
            Coercion::Fail(_, _, h) => h.ty(),
            Coercion::Seq(_, c2) => c2.target_representative(),
            Coercion::Fun(c, d) => Type::fun(c.source_representative(), d.target_representative()),
        }
    }

    /// [`Coercion::synthesize`] on interned [`TypeId`]s: the unique
    /// `c : A ⇒ B` of a failure-free coercion, with the intermediate
    /// type agreement of `c ; d` an O(1) id comparison instead of a
    /// structural one.
    pub fn synthesize_in(&self, types: &mut TypeArena) -> Option<(TypeId, TypeId)> {
        match self {
            Coercion::Id(a) => {
                let id = types.intern(a);
                Some((id, id))
            }
            Coercion::Inj(g) => Some((types.ground(*g), types.dyn_ty())),
            Coercion::Proj(g, _) => Some((types.dyn_ty(), types.ground(*g))),
            Coercion::Fun(c, d) => {
                // c : A' ⇒ A, d : B ⇒ B'  gives  c→d : A→B ⇒ A'→B'.
                let (a_prime, a) = c.synthesize_in(types)?;
                let (b, b_prime) = d.synthesize_in(types)?;
                Some((types.fun(a, b), types.fun(a_prime, b_prime)))
            }
            Coercion::Seq(c, d) => {
                let (a, b) = c.synthesize_in(types)?;
                let (b2, c2) = d.synthesize_in(types)?;
                (b == b2).then_some((a, c2))
            }
            Coercion::Fail(_, _, _) => None,
        }
    }

    /// [`Coercion::check`] on interned [`TypeId`]s.
    pub fn check_interned(&self, source: TypeId, target: TypeId, types: &mut TypeArena) -> bool {
        self.check_opt_in(Some(source), Some(target), types)
    }

    /// [`Coercion::check_opt`] on ids; see the tree version for why
    /// the endpoints are optional (`⊥GpH` leaves its target
    /// unconstrained).
    fn check_opt_in(
        &self,
        source: Option<TypeId>,
        target: Option<TypeId>,
        types: &mut TypeArena,
    ) -> bool {
        match self {
            Coercion::Id(a) => {
                let id = types.intern(a);
                source.is_none_or(|s| s == id) && target.is_none_or(|t| t == id)
            }
            Coercion::Inj(g) => {
                let gid = types.ground(*g);
                source.is_none_or(|s| s == gid) && target.is_none_or(|t| types.is_dyn(t))
            }
            Coercion::Proj(g, _) => {
                let gid = types.ground(*g);
                source.is_none_or(|s| types.is_dyn(s)) && target.is_none_or(|t| t == gid)
            }
            Coercion::Fun(c, d) => {
                let (a, b) = match source.map(|s| types.node(s)) {
                    Some(TNode::Fun(a, b)) => (Some(a), Some(b)),
                    Some(_) => return false,
                    None => (None, None),
                };
                let (a2, b2) = match target.map(|t| types.node(t)) {
                    Some(TNode::Fun(a2, b2)) => (Some(a2), Some(b2)),
                    Some(_) => return false,
                    None => (None, None),
                };
                c.check_opt_in(a2, a, types) && d.check_opt_in(b, b2, types)
            }
            Coercion::Seq(c, d) => {
                if let Some((a, b)) = c.synthesize_in(types) {
                    source.is_none_or(|s| s == a) && d.check_opt_in(Some(b), target, types)
                } else if let Some((b, c2)) = d.synthesize_in(types) {
                    target.is_none_or(|t| t == c2) && c.check_opt_in(source, Some(b), types)
                } else {
                    // Both sides contain ⊥: the intermediate type is
                    // existentially quantified and a witness always
                    // exists (the ground type demanded by `d`).
                    c.check_opt_in(source, None, types) && d.check_opt_in(None, target, types)
                }
            }
            Coercion::Fail(g, _, h) => {
                g != h
                    && source.is_none_or(|s| {
                        let gid = types.ground(*g);
                        !types.is_dyn(s) && types.compatible(s, gid)
                    })
                    && target.is_none_or(|_| true)
            }
        }
    }

    /// [`Coercion::source_representative`] interned.
    pub fn source_representative_in(&self, types: &mut TypeArena) -> TypeId {
        match self {
            Coercion::Id(a) => types.intern(a),
            Coercion::Inj(g) | Coercion::Fail(g, _, _) => types.ground(*g),
            Coercion::Proj(_, _) => types.dyn_ty(),
            Coercion::Seq(c1, _) => c1.source_representative_in(types),
            Coercion::Fun(c, d) => {
                let dom = c.target_representative_in(types);
                let cod = d.source_representative_in(types);
                types.fun(dom, cod)
            }
        }
    }

    /// [`Coercion::target_representative`] interned.
    pub fn target_representative_in(&self, types: &mut TypeArena) -> TypeId {
        match self {
            Coercion::Id(a) => types.intern(a),
            Coercion::Inj(_) => types.dyn_ty(),
            Coercion::Proj(g, _) => types.ground(*g),
            Coercion::Fail(_, _, h) => types.ground(*h),
            Coercion::Seq(_, c2) => c2.target_representative_in(types),
            Coercion::Fun(c, d) => {
                let dom = c.source_representative_in(types);
                let cod = d.target_representative_in(types);
                types.fun(dom, cod)
            }
        }
    }

    /// The height `‖c‖` of a coercion (Figure 3). Note that
    /// composition does *not* increase height: `‖c ; d‖ =
    /// max(‖c‖, ‖d‖)`. Height is the quantity preserved by the λS
    /// composition operator (Proposition 14).
    pub fn height(&self) -> usize {
        match self {
            Coercion::Id(_) | Coercion::Inj(_) | Coercion::Proj(_, _) | Coercion::Fail(_, _, _) => {
                1
            }
            Coercion::Fun(c, d) => 1 + c.height().max(d.height()),
            Coercion::Seq(c, d) => c.height().max(d.height()),
        }
    }

    /// The number of syntax nodes in the coercion. Unlike height, size
    /// grows under naive composition — this is exactly the space leak.
    pub fn size(&self) -> usize {
        match self {
            Coercion::Id(_) | Coercion::Inj(_) | Coercion::Proj(_, _) | Coercion::Fail(_, _, _) => {
                1
            }
            Coercion::Fun(c, d) | Coercion::Seq(c, d) => 1 + c.size() + d.size(),
        }
    }

    /// Whether `c safeC q` (Figure 3): the coercion never allocates
    /// blame to `q`. Pleasingly simple: `c` is safe for `q` iff it
    /// does not mention `q`.
    pub fn safe_for(&self, q: Label) -> bool {
        match self {
            Coercion::Id(_) | Coercion::Inj(_) => true,
            Coercion::Proj(_, p) | Coercion::Fail(_, p, _) => *p != q,
            Coercion::Fun(c, d) | Coercion::Seq(c, d) => c.safe_for(q) && d.safe_for(q),
        }
    }

    /// Every blame label mentioned in the coercion, in syntactic
    /// order (with duplicates).
    pub fn labels(&self) -> Vec<Label> {
        fn go(c: &Coercion, out: &mut Vec<Label>) {
            match c {
                Coercion::Id(_) | Coercion::Inj(_) => {}
                Coercion::Proj(_, p) | Coercion::Fail(_, p, _) => out.push(*p),
                Coercion::Fun(c, d) | Coercion::Seq(c, d) => {
                    go(c, out);
                    go(d, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }
}

impl fmt::Display for Coercion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coercion::Id(a) => write!(f, "id[{a}]"),
            Coercion::Inj(g) => write!(f, "({g})!"),
            Coercion::Proj(g, p) => write!(f, "({g})?{p}"),
            Coercion::Fun(c, d) => write!(f, "({c} -> {d})"),
            Coercion::Seq(c, d) => write!(f, "({c} ; {d})"),
            Coercion::Fail(g, p, h) => write!(f, "⊥[{g},{p},{h}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::BaseType;

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn gb() -> Ground {
        Ground::Base(BaseType::Bool)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }

    #[test]
    fn typing_of_primitives() {
        assert!(Coercion::id(Type::INT).check(&Type::INT, &Type::INT));
        assert!(!Coercion::id(Type::INT).check(&Type::INT, &Type::DYN));
        assert!(Coercion::inj(gi()).check(&Type::INT, &Type::DYN));
        assert!(Coercion::proj(gi(), p(0)).check(&Type::DYN, &Type::INT));
        assert!(Coercion::inj(Ground::Fun).check(&Type::dyn_fun(), &Type::DYN));
    }

    #[test]
    fn typing_of_fun_and_seq() {
        // Int?p → Int! : Int→Int ⇒ ?→?
        let c = Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi()));
        let ii = Type::fun(Type::INT, Type::INT);
        assert!(c.check(&ii, &Type::dyn_fun()));
        assert_eq!(c.synthesize(), Some((ii.clone(), Type::dyn_fun())));
        // Int! ; Bool?p : Int ⇒ Bool (well-typed but doomed).
        let c2 = Coercion::inj(gi()).seq(Coercion::proj(gb(), p(1)));
        assert!(c2.check(&Type::INT, &Type::BOOL));
        // Mismatched composition is rejected.
        let bad = Coercion::id(Type::INT).seq(Coercion::id(Type::BOOL));
        assert!(!bad.check(&Type::INT, &Type::BOOL));
        assert_eq!(bad.synthesize(), None);
    }

    #[test]
    fn distinct_coercions_may_share_a_type() {
        // id? and G?p ; G! both have type ? ⇒ ?.
        let c = Coercion::proj(gi(), p(0)).seq(Coercion::inj(gi()));
        assert!(Coercion::id(Type::DYN).check(&Type::DYN, &Type::DYN));
        assert!(c.check(&Type::DYN, &Type::DYN));
    }

    #[test]
    fn fail_typing_is_flexible_in_its_target() {
        let c = Coercion::fail(gi(), p(0), gb());
        assert!(c.check(&Type::INT, &Type::BOOL));
        assert!(c.check(&Type::INT, &Type::dyn_fun()));
        // But the source must be ≠ ? and compatible with G.
        assert!(!c.check(&Type::DYN, &Type::BOOL));
        assert!(!c.check(&Type::BOOL, &Type::BOOL));
        // Composition of two failures type-checks (§4 normal forms
        // never produce this, but the type system permits it).
        let cc = Coercion::fail(gi(), p(0), gb()).seq(Coercion::fail(gb(), p(1), gi()));
        assert!(cc.check(&Type::INT, &Type::INT));
    }

    #[test]
    #[should_panic(expected = "G ≠ H")]
    fn fail_requires_distinct_grounds() {
        let _ = Coercion::fail(gi(), p(0), gi());
    }

    #[test]
    fn height_follows_figure_3() {
        let c = Coercion::fun(Coercion::id(Type::INT), Coercion::id(Type::INT));
        assert_eq!(c.height(), 2);
        // Composition does not increase height.
        let d = c.clone().seq(c.clone());
        assert_eq!(d.height(), 2);
        assert_eq!(Coercion::inj(gi()).height(), 1);
        // ...but it does increase size.
        assert!(d.size() > c.size());
    }

    #[test]
    fn safety_is_label_absence() {
        let c = Coercion::proj(gi(), p(0)).seq(Coercion::inj(gi()));
        assert!(!c.safe_for(p(0)));
        assert!(c.safe_for(p(1)));
        assert!(c.safe_for(p(0).complement()));
        assert!(Coercion::inj(gi()).safe_for(p(0)));
        assert!(!Coercion::fail(gi(), p(2), gb()).safe_for(p(2)));
    }

    #[test]
    fn display() {
        let c = Coercion::proj(gi(), p(0)).seq(Coercion::inj(gi()));
        assert_eq!(c.to_string(), "((Int)?p0 ; (Int)!)");
    }
}
