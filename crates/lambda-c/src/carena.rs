//! A hash-consing arena for λC coercions.
//!
//! λC coercions are *not* the canonical λS coercions of
//! `bc-core` — they keep their unnormalised `c ; d` spines, which is
//! what makes `decompile ∘ compile = id` hold for the compiled λC term
//! IR ([`crate::cterm`]). [`CArena`] interns them behind `Copy`
//! [`CCoercionId`] handles the same way [`TypeArena`] interns types:
//! structurally equal coercions get the same id, so a warm recompile
//! of structurally similar source (labels restart at 0 per compile)
//! interns nothing.
//!
//! Each node's *representative endpoints* `c : A ⇒ B` are synthesised
//! once at intern time (the id analogue of
//! [`Coercion::source_representative`]), together with whether the
//! synthesis is *exact* — failure-free with all composition
//! intermediates agreeing — so the compiled checker answers
//! `M⟨c⟩`-typing questions with two id reads instead of a tree walk.
//!
//! # The id-offset / foreign-id contract
//!
//! [`CCoercionId`]s are indices into the arena that created them, and
//! the [`TypeId`]s inside the nodes are indices into the [`TypeArena`]
//! they were interned against. A compiled λC term is therefore only
//! meaningful alongside *its* `CArena`/`TypeArena` pair. Unlike the
//! space-coercion arena, a `CArena` has no frozen base tier: the λC
//! form is a lowering *intermediate* that never travels. Pool workers
//! each own a private `CArena` and re-derive λC forms locally from
//! the (portable, base-id-only) compiled λB term; on a warm base the
//! re-derivation is pure hash-cons hits.

use std::collections::HashMap;

use bc_syntax::{FxBuildHasher, Ground, Label, TypeArena, TypeId};

use crate::coercion::Coercion;

/// An interned λC coercion handle. Copy, 4 bytes, O(1) equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CCoercionId(u32);

impl CCoercionId {
    /// The arena slot index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned λC coercion node: [`Coercion`] with subtrees replaced
/// by ids and the identity's type interned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CNode {
    /// The identity `id_A`.
    Id(TypeId),
    /// An injection `G!`.
    Inj(Ground),
    /// A projection `G?p`.
    Proj(Ground, Label),
    /// A function coercion `c → d`.
    Fun(CCoercionId, CCoercionId),
    /// A composition `c ; d`.
    Seq(CCoercionId, CCoercionId),
    /// The failure `⊥GpH`.
    Fail(Ground, Label, Ground),
}

/// Per-node metadata computed once at intern time.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Representative source type `A` of `c : A ⇒ B`.
    source: TypeId,
    /// Representative target type `B`.
    target: TypeId,
    /// Whether the endpoints are *exact* (failure-free, and every
    /// `c ; d` intermediate agrees): iff [`Coercion::synthesize`]
    /// would succeed on the resolved tree.
    exact: bool,
    /// Height `‖c‖` (composition does not increase it).
    height: u32,
    /// Tree size (composition does increase it).
    size: u32,
}

/// Interning statistics: how much work a warm arena avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CArenaStats {
    /// Number of distinct nodes in the arena.
    pub nodes: usize,
    /// Intern calls answered from the hash-cons table.
    pub hits: u64,
    /// Intern calls that allocated a new node.
    pub misses: u64,
}

/// A hash-consing arena for λC coercions. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CArena {
    nodes: Vec<CNode>,
    meta: Vec<Meta>,
    map: HashMap<CNode, CCoercionId, FxBuildHasher>,
    hits: u64,
}

impl CArena {
    /// Creates an empty arena.
    pub fn new() -> CArena {
        CArena::default()
    }

    /// Interns a node, synthesising its endpoint metadata.
    ///
    /// # Panics
    ///
    /// Panics if the node is `⊥GpH` with `G = H`, or if a child id is
    /// foreign to this arena.
    pub fn intern_node(&mut self, node: CNode, types: &mut TypeArena) -> CCoercionId {
        if let Some(&id) = self.map.get(&node) {
            self.hits += 1;
            return id;
        }
        let meta = match node {
            CNode::Id(a) => Meta {
                source: a,
                target: a,
                exact: true,
                height: 1,
                size: 1,
            },
            CNode::Inj(g) => Meta {
                source: types.ground(g),
                target: types.dyn_ty(),
                exact: true,
                height: 1,
                size: 1,
            },
            CNode::Proj(g, _) => Meta {
                source: types.dyn_ty(),
                target: types.ground(g),
                exact: true,
                height: 1,
                size: 1,
            },
            CNode::Fun(c, d) => {
                let (mc, md) = (self.meta[c.index()], self.meta[d.index()]);
                // c : A' ⇒ A, d : B ⇒ B'  gives  c→d : A→B ⇒ A'→B'.
                Meta {
                    source: types.fun(mc.target, md.source),
                    target: types.fun(mc.source, md.target),
                    exact: mc.exact && md.exact,
                    height: 1 + mc.height.max(md.height),
                    size: 1 + mc.size + md.size,
                }
            }
            CNode::Seq(c, d) => {
                let (mc, md) = (self.meta[c.index()], self.meta[d.index()]);
                Meta {
                    source: mc.source,
                    target: md.target,
                    exact: mc.exact && md.exact && mc.target == md.source,
                    height: mc.height.max(md.height),
                    size: 1 + mc.size + md.size,
                }
            }
            CNode::Fail(g, _, h) => {
                assert_ne!(g, h, "⊥GpH requires G ≠ H");
                Meta {
                    source: types.ground(g),
                    target: types.ground(h),
                    exact: false,
                    height: 1,
                    size: 1,
                }
            }
        };
        let id = CCoercionId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(node);
        self.meta.push(meta);
        self.map.insert(node, id);
        id
    }

    /// Interns the identity `id_A`.
    pub fn id(&mut self, a: TypeId, types: &mut TypeArena) -> CCoercionId {
        self.intern_node(CNode::Id(a), types)
    }

    /// Interns the injection `G!`.
    pub fn inj(&mut self, g: Ground, types: &mut TypeArena) -> CCoercionId {
        self.intern_node(CNode::Inj(g), types)
    }

    /// Interns the projection `G?p`.
    pub fn proj(&mut self, g: Ground, p: Label, types: &mut TypeArena) -> CCoercionId {
        self.intern_node(CNode::Proj(g, p), types)
    }

    /// Interns the function coercion `c → d`.
    pub fn fun(&mut self, c: CCoercionId, d: CCoercionId, types: &mut TypeArena) -> CCoercionId {
        self.intern_node(CNode::Fun(c, d), types)
    }

    /// Interns the composition `c ; d`.
    pub fn seq(&mut self, c: CCoercionId, d: CCoercionId, types: &mut TypeArena) -> CCoercionId {
        self.intern_node(CNode::Seq(c, d), types)
    }

    /// Interns the failure `⊥GpH`.
    ///
    /// # Panics
    ///
    /// Panics if `G = H`.
    pub fn fail(&mut self, g: Ground, p: Label, h: Ground, types: &mut TypeArena) -> CCoercionId {
        self.intern_node(CNode::Fail(g, p, h), types)
    }

    /// The node behind an id.
    pub fn node(&self, id: CCoercionId) -> CNode {
        self.nodes[id.index()]
    }

    /// The representative source type `A` of `c : A ⇒ B`.
    pub fn source(&self, id: CCoercionId) -> TypeId {
        self.meta[id.index()].source
    }

    /// The representative target type `B` of `c : A ⇒ B`.
    pub fn target(&self, id: CCoercionId) -> TypeId {
        self.meta[id.index()].target
    }

    /// Whether the endpoints are exact: iff [`Coercion::synthesize`]
    /// succeeds on the resolved tree (failure-free, compositions
    /// agree).
    pub fn is_exact(&self, id: CCoercionId) -> bool {
        self.meta[id.index()].exact
    }

    /// The height `‖c‖` (Figure 3).
    pub fn height(&self, id: CCoercionId) -> usize {
        self.meta[id.index()].height as usize
    }

    /// The tree size of the coercion.
    pub fn size(&self, id: CCoercionId) -> usize {
        self.meta[id.index()].size as usize
    }

    /// Whether `c safeC q`: the coercion never mentions `q`.
    pub fn safe_for(&self, id: CCoercionId, q: Label) -> bool {
        match self.node(id) {
            CNode::Id(_) | CNode::Inj(_) => true,
            CNode::Proj(_, p) | CNode::Fail(_, p, _) => p != q,
            CNode::Fun(c, d) | CNode::Seq(c, d) => self.safe_for(c, q) && self.safe_for(d, q),
        }
    }

    /// Interns a tree coercion bottom-up.
    pub fn intern(&mut self, c: &Coercion, types: &mut TypeArena) -> CCoercionId {
        match c {
            Coercion::Id(a) => {
                let a = types.intern(a);
                self.id(a, types)
            }
            Coercion::Inj(g) => self.inj(*g, types),
            Coercion::Proj(g, p) => self.proj(*g, *p, types),
            Coercion::Fun(c, d) => {
                let c = self.intern(c, types);
                let d = self.intern(d, types);
                self.fun(c, d, types)
            }
            Coercion::Seq(c, d) => {
                let c = self.intern(c, types);
                let d = self.intern(d, types);
                self.seq(c, d, types)
            }
            Coercion::Fail(g, p, h) => self.fail(*g, *p, *h, types),
        }
    }

    /// Rebuilds the tree coercion behind an id; inverse of
    /// [`CArena::intern`].
    pub fn resolve(&self, id: CCoercionId, types: &TypeArena) -> Coercion {
        match self.node(id) {
            CNode::Id(a) => Coercion::Id(types.resolve(a)),
            CNode::Inj(g) => Coercion::Inj(g),
            CNode::Proj(g, p) => Coercion::Proj(g, p),
            CNode::Fun(c, d) => {
                Coercion::Fun(self.resolve(c, types).into(), self.resolve(d, types).into())
            }
            CNode::Seq(c, d) => {
                Coercion::Seq(self.resolve(c, types).into(), self.resolve(d, types).into())
            }
            CNode::Fail(g, p, h) => Coercion::Fail(g, p, h),
        }
    }

    /// Number of distinct nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interning statistics.
    pub fn stats(&self) -> CArenaStats {
        CArenaStats {
            nodes: self.nodes.len(),
            hits: self.hits,
            misses: self.nodes.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Type};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn gb() -> Ground {
        Ground::Base(BaseType::Bool)
    }

    #[test]
    fn interning_is_idempotent_and_counts_hits() {
        let mut types = TypeArena::new();
        let mut arena = CArena::new();
        let c = Coercion::proj(gi(), Label::new(0)).seq(Coercion::inj(gi()));
        let a = arena.intern(&c, &mut types);
        let before = arena.len();
        let b = arena.intern(&c, &mut types);
        assert_eq!(a, b);
        assert_eq!(arena.len(), before);
        assert!(arena.stats().hits >= 3);
    }

    #[test]
    fn endpoints_match_the_tree_synthesis() {
        let mut types = TypeArena::new();
        let mut arena = CArena::new();
        let ii = Type::fun(Type::INT, Type::INT);
        let samples = [
            Coercion::id(Type::INT),
            Coercion::inj(gi()),
            Coercion::proj(gb(), Label::new(1)),
            Coercion::fun(Coercion::proj(gi(), Label::new(0)), Coercion::inj(gi())),
            Coercion::inj(gi()).seq(Coercion::proj(gb(), Label::new(2))),
            Coercion::id(ii).seq(Coercion::fun(
                Coercion::proj(gi(), Label::new(3)),
                Coercion::inj(gi()),
            )),
        ];
        for c in &samples {
            let id = arena.intern(c, &mut types);
            let (src, tgt) = c.synthesize().expect("failure-free samples");
            assert_eq!(types.resolve(arena.source(id)), src, "{c}");
            assert_eq!(types.resolve(arena.target(id)), tgt, "{c}");
            assert!(arena.is_exact(id), "{c}");
            assert_eq!(arena.height(id), c.height(), "{c}");
            assert_eq!(arena.size(id), c.size(), "{c}");
            assert_eq!(arena.resolve(id, &types), *c, "{c}");
        }
    }

    #[test]
    fn inexact_coercions_use_representatives() {
        let mut types = TypeArena::new();
        let mut arena = CArena::new();
        let c = Coercion::fail(gi(), Label::new(0), gb());
        let id = arena.intern(&c, &mut types);
        assert!(!arena.is_exact(id));
        assert_eq!(types.resolve(arena.source(id)), c.source_representative());
        assert_eq!(types.resolve(arena.target(id)), c.target_representative());
        // A mismatched composition is representable but inexact.
        let bad = Coercion::id(Type::INT).seq(Coercion::id(Type::BOOL));
        let id = arena.intern(&bad, &mut types);
        assert!(!arena.is_exact(id));
        let fail_id = arena.intern(&c, &mut types);
        assert!(!arena.safe_for(fail_id, Label::new(0)));
        assert!(arena.safe_for(id, Label::new(0)));
    }
}
