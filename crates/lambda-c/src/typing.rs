//! The type system `Γ ⊢C M : A` of the coercion calculus (Figure 3).

use std::fmt;

use bc_syntax::{Name, TNode, Type, TypeArena, TypeId};

use crate::term::Term;

/// A typing error for λC terms.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A variable was not bound in the environment.
    UnboundVariable(Name),
    /// An operator was applied to the wrong number of arguments.
    OpArity {
        /// The operator's name.
        op: &'static str,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
    /// A term had a different type than required by its context.
    Mismatch {
        /// The type required by the context.
        expected: Type,
        /// The type the term actually has.
        found: Type,
        /// What was being checked.
        context: &'static str,
    },
    /// The function position of an application was not a function.
    NotAFunction(Type),
    /// A coercion application `M⟨c⟩` where `c` does not coerce from
    /// `M`'s type to any type consistent with the context.
    BadCoercion {
        /// The subject's type.
        subject: Type,
        /// Rendering of the offending coercion.
        coercion: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::OpArity {
                op,
                expected,
                found,
            } => write!(
                f,
                "operator `{op}` expects {expected} arguments, found {found}"
            ),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected `{expected}`, found `{found}`"
            ),
            TypeError::NotAFunction(t) => write!(f, "cannot apply a term of type `{t}`"),
            TypeError::BadCoercion { subject, coercion } => {
                write!(
                    f,
                    "coercion `{coercion}` cannot be applied to a term of type `{subject}`"
                )
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Computes the type of a closed λC term: `⊢C M : A`.
///
/// For coercion applications `M⟨c⟩`, the target type is synthesised
/// from `c` when possible; a coercion containing `⊥` (whose target is
/// unconstrained) is checked against the demands of its context — at
/// the top level we give `⊥`-targets the ground type they name, which
/// matches the λS canonical forms.
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not well typed.
pub fn type_of(term: &Term) -> Result<Type, TypeError> {
    type_of_in(&mut Vec::new(), term)
}

/// Computes the type of a λC term in an environment.
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not well typed.
pub fn type_of_in(env: &mut Vec<(Name, Type)>, term: &Term) -> Result<Type, TypeError> {
    match term {
        Term::Const(k) => Ok(k.base_type().ty()),
        Term::Var(x) => env
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        Term::Op(op, args) => {
            let (params, result) = op.signature();
            if params.len() != args.len() {
                return Err(TypeError::OpArity {
                    op: op.name(),
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in params.iter().zip(args) {
                if !check_in(env, arg, &param.ty()) {
                    let found = type_of_in(env, arg)?;
                    return Err(TypeError::Mismatch {
                        expected: param.ty(),
                        found,
                        context: "operator argument",
                    });
                }
            }
            Ok(result.ty())
        }
        Term::Lam(x, dom, body) => {
            env.push((x.clone(), dom.clone()));
            let cod = type_of_in(env, body);
            env.pop();
            Ok(Type::fun(dom.clone(), cod?))
        }
        Term::App(l, m) => {
            let lt = type_of_in(env, l)?;
            let mt = type_of_in(env, m)?;
            match lt {
                Type::Fun(dom, cod) => {
                    if *dom == mt || check_in(env, m, &dom) {
                        Ok((*cod).clone())
                    } else {
                        Err(TypeError::Mismatch {
                            expected: (*dom).clone(),
                            found: mt,
                            context: "function argument",
                        })
                    }
                }
                other => Err(TypeError::NotAFunction(other)),
            }
        }
        Term::Coerce(m, c) => {
            let mt = type_of_in(env, m)?;
            match c.synthesize() {
                Some((src, tgt)) => {
                    if src == mt || check_in(env, m, &src) {
                        Ok(tgt)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: src,
                            found: mt,
                            context: "coercion source",
                        })
                    }
                }
                None => {
                    // The coercion contains ⊥; check the source side
                    // and resolve the unconstrained positions of the
                    // target with the coercion's representative type.
                    let tgt = c.target_representative();
                    if c.check(&mt, &tgt) {
                        Ok(tgt)
                    } else {
                        Err(TypeError::BadCoercion {
                            subject: mt,
                            coercion: c.to_string(),
                        })
                    }
                }
            }
        }
        Term::Blame(_, ty) => Ok(ty.clone()),
        Term::If(cond, then_, else_) => {
            if !check_in(env, cond, &Type::BOOL) {
                let ct = type_of_in(env, cond)?;
                return Err(TypeError::Mismatch {
                    expected: Type::BOOL,
                    found: ct,
                    context: "if condition",
                });
            }
            let tt = type_of_in(env, then_)?;
            let et = type_of_in(env, else_)?;
            if tt == et || check_in(env, else_, &tt) {
                Ok(tt)
            } else if check_in(env, then_, &et) {
                Ok(et)
            } else {
                Err(TypeError::Mismatch {
                    expected: tt,
                    found: et,
                    context: "if branches",
                })
            }
        }
        Term::Let(x, m, n) => {
            let mt = type_of_in(env, m)?;
            env.push((x.clone(), mt));
            let nt = type_of_in(env, n);
            env.pop();
            nt
        }
        Term::Fix(f, x, dom, cod, body) => {
            let fun_ty = Type::fun(dom.clone(), cod.clone());
            env.push((f.clone(), fun_ty.clone()));
            env.push((x.clone(), dom.clone()));
            let bt = type_of_in(env, body);
            env.pop();
            env.pop();
            let bt = bt?;
            if bt != *cod {
                env.push((f.clone(), fun_ty.clone()));
                env.push((x.clone(), dom.clone()));
                let ok = check_in(env, body, cod);
                env.pop();
                env.pop();
                if !ok {
                    return Err(TypeError::Mismatch {
                        expected: cod.clone(),
                        found: bt,
                        context: "fix body",
                    });
                }
            }
            Ok(fun_ty)
        }
    }
}

/// The *checking* judgment `Γ ⊢C M : A` for a given `A`.
///
/// Differs from [`type_of`] (which synthesises a representative type)
/// exactly where the paper's typing is not syntax-directed: `blame p`
/// has every type, and `⊥GpH` coerces to every target. Preservation
/// (Proposition 3) holds for this judgment.
pub fn has_type(term: &Term, ty: &Type) -> bool {
    check_in(&mut Vec::new(), term, ty)
}

fn check_in(env: &mut Vec<(Name, Type)>, term: &Term, expected: &Type) -> bool {
    match term {
        // blame p : A for every A.
        Term::Blame(_, _) => true,
        Term::Coerce(m, c) => {
            if let Some((src, tgt)) = c.synthesize() {
                tgt == *expected && check_in(env, m, &src)
            } else {
                // ⊥ leaves the target unconstrained: use the
                // relational judgment against the expected type.
                match type_of_in(env, m) {
                    Ok(mt) => c.check(&mt, expected),
                    Err(_) => false,
                }
            }
        }
        Term::If(c, t, e) => {
            check_in(env, c, &Type::BOOL)
                && check_in(env, t, expected)
                && check_in(env, e, expected)
        }
        Term::Lam(x, dom, body) => match expected {
            Type::Fun(d, c) => {
                if **d != *dom {
                    return false;
                }
                env.push((x.clone(), dom.clone()));
                let ok = check_in(env, body, c);
                env.pop();
                ok
            }
            _ => false,
        },
        Term::Fix(f, x, dom, cod, body) => {
            let fun_ty = Type::fun(dom.clone(), cod.clone());
            if fun_ty != *expected {
                return false;
            }
            env.push((f.clone(), fun_ty));
            env.push((x.clone(), dom.clone()));
            let ok = check_in(env, body, cod);
            env.pop();
            env.pop();
            ok
        }
        Term::Let(x, m, n) => match type_of_in(env, m) {
            Ok(mt) => {
                env.push((x.clone(), mt));
                let ok = check_in(env, n, expected);
                env.pop();
                ok
            }
            Err(_) => false,
        },
        Term::App(l, m) => {
            if let Ok(Type::Fun(d, c)) = type_of_in(env, l) {
                if *c == *expected && check_in(env, m, &d) {
                    return true;
                }
            }
            // The function may be a ⊥-coerced term whose synthesised
            // type is only a representative: check it against the
            // function type demanded by the argument and the context.
            match type_of_in(env, m) {
                Ok(mt) => check_in(env, l, &Type::fun(mt, expected.clone())),
                Err(_) => false,
            }
        }
        // Synthesising forms: fall back to equality.
        Term::Op(op, args) => {
            let (params, result) = op.signature();
            result.ty() == *expected
                && params.len() == args.len()
                && params
                    .iter()
                    .zip(args)
                    .all(|(param, arg)| check_in(env, arg, &param.ty()))
        }
        _ => type_of_in(env, term).is_ok_and(|t| t == *expected),
    }
}

/// Computes the type of a closed λC term against a caller-owned
/// [`TypeArena`]: the interned fast path of [`type_of`]. Coercion
/// endpoints are synthesised as ids ([`crate::Coercion::synthesize_in`]),
/// so the `c ; d` intermediate-type agreement and every
/// subject-against-source comparison is O(1). Agreement with
/// [`type_of`] (same verdict, type, and [`TypeError`]) is validated by
/// property test.
///
/// # Errors
///
/// Returns the same [`TypeError`] [`type_of`] would.
pub fn type_of_interned(term: &Term, types: &mut TypeArena) -> Result<TypeId, TypeError> {
    type_of_interned_in(&mut Vec::new(), term, types)
}

/// Computes the type of a λC term in an interned environment.
///
/// # Errors
///
/// See [`type_of_interned`].
pub fn type_of_interned_in(
    env: &mut Vec<(Name, TypeId)>,
    term: &Term,
    types: &mut TypeArena,
) -> Result<TypeId, TypeError> {
    match term {
        Term::Const(k) => Ok(types.base(k.base_type())),
        Term::Var(x) => env
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| *t)
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        Term::Op(op, args) => {
            let (params, result) = op.signature();
            if params.len() != args.len() {
                return Err(TypeError::OpArity {
                    op: op.name(),
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in params.iter().zip(args) {
                let param_id = types.base(*param);
                if !check_interned_in(env, arg, param_id, types) {
                    let found = type_of_interned_in(env, arg, types)?;
                    return Err(TypeError::Mismatch {
                        expected: param.ty(),
                        found: types.resolve_shared(found),
                        context: "operator argument",
                    });
                }
            }
            Ok(types.base(result))
        }
        Term::Lam(x, dom, body) => {
            let dom_id = types.intern(dom);
            env.push((x.clone(), dom_id));
            let cod = type_of_interned_in(env, body, types);
            env.pop();
            Ok(types.fun(dom_id, cod?))
        }
        Term::App(l, m) => {
            let lt = type_of_interned_in(env, l, types)?;
            let mt = type_of_interned_in(env, m, types)?;
            match types.node(lt) {
                TNode::Fun(dom, cod) => {
                    if dom == mt || check_interned_in(env, m, dom, types) {
                        Ok(cod)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: types.resolve_shared(dom),
                            found: types.resolve_shared(mt),
                            context: "function argument",
                        })
                    }
                }
                _ => Err(TypeError::NotAFunction(types.resolve_shared(lt))),
            }
        }
        Term::Coerce(m, c) => {
            let mt = type_of_interned_in(env, m, types)?;
            match c.synthesize_in(types) {
                Some((src, tgt)) => {
                    if src == mt || check_interned_in(env, m, src, types) {
                        Ok(tgt)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: types.resolve_shared(src),
                            found: types.resolve_shared(mt),
                            context: "coercion source",
                        })
                    }
                }
                None => {
                    // The coercion contains ⊥; check the source side
                    // and resolve the unconstrained positions of the
                    // target with the coercion's representative type.
                    let tgt = c.target_representative_in(types);
                    if c.check_interned(mt, tgt, types) {
                        Ok(tgt)
                    } else {
                        Err(TypeError::BadCoercion {
                            subject: types.resolve_shared(mt),
                            coercion: c.to_string(),
                        })
                    }
                }
            }
        }
        Term::Blame(_, ty) => Ok(types.intern(ty)),
        Term::If(cond, then_, else_) => {
            let bool_id = types.base(bc_syntax::BaseType::Bool);
            if !check_interned_in(env, cond, bool_id, types) {
                let ct = type_of_interned_in(env, cond, types)?;
                return Err(TypeError::Mismatch {
                    expected: Type::BOOL,
                    found: types.resolve_shared(ct),
                    context: "if condition",
                });
            }
            let tt = type_of_interned_in(env, then_, types)?;
            let et = type_of_interned_in(env, else_, types)?;
            if tt == et || check_interned_in(env, else_, tt, types) {
                Ok(tt)
            } else if check_interned_in(env, then_, et, types) {
                Ok(et)
            } else {
                Err(TypeError::Mismatch {
                    expected: types.resolve_shared(tt),
                    found: types.resolve_shared(et),
                    context: "if branches",
                })
            }
        }
        Term::Let(x, m, n) => {
            let mt = type_of_interned_in(env, m, types)?;
            env.push((x.clone(), mt));
            let nt = type_of_interned_in(env, n, types);
            env.pop();
            nt
        }
        Term::Fix(f, x, dom, cod, body) => {
            let dom_id = types.intern(dom);
            let cod_id = types.intern(cod);
            let fun_id = types.fun(dom_id, cod_id);
            env.push((f.clone(), fun_id));
            env.push((x.clone(), dom_id));
            let bt = type_of_interned_in(env, body, types);
            env.pop();
            env.pop();
            let bt = bt?;
            if bt != cod_id {
                env.push((f.clone(), fun_id));
                env.push((x.clone(), dom_id));
                let ok = check_interned_in(env, body, cod_id, types);
                env.pop();
                env.pop();
                if !ok {
                    return Err(TypeError::Mismatch {
                        expected: cod.clone(),
                        found: types.resolve_shared(bt),
                        context: "fix body",
                    });
                }
            }
            Ok(fun_id)
        }
    }
}

/// The *checking* judgment `Γ ⊢C M : A` on interned types; the id
/// counterpart of [`has_type`]. Preservation (Proposition 3) holds for
/// this judgment.
pub fn has_type_interned(term: &Term, ty: TypeId, types: &mut TypeArena) -> bool {
    check_interned_in(&mut Vec::new(), term, ty, types)
}

fn check_interned_in(
    env: &mut Vec<(Name, TypeId)>,
    term: &Term,
    expected: TypeId,
    types: &mut TypeArena,
) -> bool {
    match term {
        // blame p : A for every A.
        Term::Blame(_, _) => true,
        Term::Coerce(m, c) => {
            if let Some((src, tgt)) = c.synthesize_in(types) {
                tgt == expected && check_interned_in(env, m, src, types)
            } else {
                // ⊥ leaves the target unconstrained: use the
                // relational judgment against the expected type.
                match type_of_interned_in(env, m, types) {
                    Ok(mt) => c.check_interned(mt, expected, types),
                    Err(_) => false,
                }
            }
        }
        Term::If(c, t, e) => {
            let bool_id = types.base(bc_syntax::BaseType::Bool);
            check_interned_in(env, c, bool_id, types)
                && check_interned_in(env, t, expected, types)
                && check_interned_in(env, e, expected, types)
        }
        Term::Lam(x, dom, body) => match types.node(expected) {
            TNode::Fun(d, c) => {
                if d != types.intern(dom) {
                    return false;
                }
                env.push((x.clone(), d));
                let ok = check_interned_in(env, body, c, types);
                env.pop();
                ok
            }
            _ => false,
        },
        Term::Fix(f, x, dom, cod, body) => {
            let dom_id = types.intern(dom);
            let cod_id = types.intern(cod);
            let fun_id = types.fun(dom_id, cod_id);
            if fun_id != expected {
                return false;
            }
            env.push((f.clone(), fun_id));
            env.push((x.clone(), dom_id));
            let ok = check_interned_in(env, body, cod_id, types);
            env.pop();
            env.pop();
            ok
        }
        Term::Let(x, m, n) => match type_of_interned_in(env, m, types) {
            Ok(mt) => {
                env.push((x.clone(), mt));
                let ok = check_interned_in(env, n, expected, types);
                env.pop();
                ok
            }
            Err(_) => false,
        },
        Term::App(l, m) => {
            if let Ok(lt) = type_of_interned_in(env, l, types) {
                if let TNode::Fun(d, c) = types.node(lt) {
                    if c == expected && check_interned_in(env, m, d, types) {
                        return true;
                    }
                }
            }
            // The function may be a ⊥-coerced term whose synthesised
            // type is only a representative: check it against the
            // function type demanded by the argument and the context.
            match type_of_interned_in(env, m, types) {
                Ok(mt) => {
                    let fun_id = types.fun(mt, expected);
                    check_interned_in(env, l, fun_id, types)
                }
                Err(_) => false,
            }
        }
        // Synthesising forms: fall back to equality.
        Term::Op(op, args) => {
            let (params, result) = op.signature();
            types.base(result) == expected
                && params.len() == args.len()
                && params.iter().zip(args).all(|(param, arg)| {
                    let param_id = types.base(*param);
                    check_interned_in(env, arg, param_id, types)
                })
        }
        _ => type_of_interned_in(env, term, types).is_ok_and(|t| t == expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coercion::Coercion;
    use bc_syntax::{BaseType, Ground, Label};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }

    #[test]
    fn coercion_application_types() {
        let m = Term::int(1).coerce(Coercion::inj(gi()));
        assert_eq!(type_of(&m), Ok(Type::DYN));
        let m2 = m.coerce(Coercion::proj(gi(), Label::new(0)));
        assert_eq!(type_of(&m2), Ok(Type::INT));
    }

    #[test]
    fn coercion_source_mismatch_is_rejected() {
        let m = Term::bool(true).coerce(Coercion::inj(gi()));
        assert!(matches!(type_of(&m), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn failure_coercions_type_check() {
        let c = Coercion::fail(gi(), Label::new(0), Ground::Base(BaseType::Bool));
        let m = Term::int(1).coerce(c);
        assert_eq!(type_of(&m), Ok(Type::BOOL));
    }

    #[test]
    fn composition_types_through_the_middle() {
        let c = Coercion::inj(gi()).seq(Coercion::proj(gi(), Label::new(0)));
        let m = Term::int(1).coerce(c);
        assert_eq!(type_of(&m), Ok(Type::INT));
    }
}
