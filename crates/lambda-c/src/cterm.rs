//! The compiled (id-annotated) form of λC terms.
//!
//! [`CTerm`] mirrors [`Term`] node for node: type
//! annotations become [`TypeId`]s and coercions become [`CCoercionId`]
//! handles into a [`CArena`]. Nothing on the warm compile path builds
//! an `Rc<Type>` or `Rc<Coercion>` tree.
//!
//! A `CTerm` is only meaningful alongside the `CArena`/`TypeArena`
//! pair its ids point into — see the [`carena`](crate::carena) module
//! docs for the foreign-id contract. [`compile`]/[`decompile`] convert
//! to and from the tree form (`decompile ∘ compile = id`, pinned by
//! property test), and [`type_of_compiled`]/[`has_type_compiled`] are
//! the PR-4 interned checkers retargeted to check the compiled form in
//! place: coercion endpoints come from the arena's intern-time
//! metadata, so `M⟨c⟩` costs two id reads instead of a coercion-tree
//! walk (only `⊥`-containing coercions, which the front end never
//! emits, fall back to the relational tree judgment).

use std::sync::Arc;

use bc_syntax::{Constant, Label, Name, Op, TNode, Type, TypeArena, TypeId};

use crate::carena::{CArena, CCoercionId};
use crate::term::Term;
use crate::typing::TypeError;

/// Compiled λC terms: [`Term`] with interned annotations
/// and coercions.
#[derive(Debug, Clone, PartialEq)]
pub enum CTerm {
    /// A constant `k`.
    Const(Constant),
    /// An operator application `op(M₁, …, Mₙ)`.
    Op(Op, Vec<CTerm>),
    /// A variable `x`.
    Var(Name),
    /// An abstraction `λx:A. N`.
    Lam(Name, TypeId, Arc<CTerm>),
    /// An application `L M`.
    App(Arc<CTerm>, Arc<CTerm>),
    /// A coercion application `M⟨c⟩`.
    Coerce(Arc<CTerm>, CCoercionId),
    /// Allocated blame `blame p`, carrying its interned type.
    Blame(Label, TypeId),
    /// A conditional `if L then M else N`.
    If(Arc<CTerm>, Arc<CTerm>, Arc<CTerm>),
    /// A let binding `let x = M in N`.
    Let(Name, Arc<CTerm>, Arc<CTerm>),
    /// A recursive function `fix f (x:A):B. N`.
    Fix(Name, Name, TypeId, TypeId, Arc<CTerm>),
}

impl CTerm {
    /// The number of syntax nodes (coercions counted via
    /// [`CArena::size`]), equal to [`Term::size`] of the decompiled
    /// tree.
    pub fn size(&self, arena: &CArena) -> usize {
        match self {
            CTerm::Const(_) | CTerm::Var(_) | CTerm::Blame(_, _) => 1,
            CTerm::Op(_, args) => 1 + args.iter().map(|a| a.size(arena)).sum::<usize>(),
            CTerm::Lam(_, _, b) | CTerm::Fix(_, _, _, _, b) => 1 + b.size(arena),
            CTerm::Coerce(m, c) => 1 + m.size(arena) + arena.size(*c),
            CTerm::App(a, b) | CTerm::Let(_, a, b) => 1 + a.size(arena) + b.size(arena),
            CTerm::If(a, b, c) => 1 + a.size(arena) + b.size(arena) + c.size(arena),
        }
    }

    /// The total size of all coercions — the λC space metric — equal
    /// to [`Term::coercion_size`] of the decompiled tree.
    pub fn coercion_size(&self, arena: &CArena) -> usize {
        match self {
            CTerm::Const(_) | CTerm::Var(_) | CTerm::Blame(_, _) => 0,
            CTerm::Op(_, args) => args.iter().map(|a| a.coercion_size(arena)).sum(),
            CTerm::Lam(_, _, b) | CTerm::Fix(_, _, _, _, b) => b.coercion_size(arena),
            CTerm::Coerce(m, c) => m.coercion_size(arena) + arena.size(*c),
            CTerm::App(a, b) | CTerm::Let(_, a, b) => {
                a.coercion_size(arena) + b.coercion_size(arena)
            }
            CTerm::If(a, b, c) => {
                a.coercion_size(arena) + b.coercion_size(arena) + c.coercion_size(arena)
            }
        }
    }
}

/// Lowers a tree λC term into the compiled form, interning every
/// annotation and coercion (idempotent in warm arenas).
pub fn compile(term: &Term, arena: &mut CArena, types: &mut TypeArena) -> CTerm {
    match term {
        Term::Const(k) => CTerm::Const(*k),
        Term::Op(op, args) => {
            CTerm::Op(*op, args.iter().map(|a| compile(a, arena, types)).collect())
        }
        Term::Var(x) => CTerm::Var(x.clone()),
        Term::Lam(x, ty, b) => {
            CTerm::Lam(x.clone(), types.intern(ty), compile(b, arena, types).into())
        }
        Term::App(a, b) => CTerm::App(
            compile(a, arena, types).into(),
            compile(b, arena, types).into(),
        ),
        Term::Coerce(m, c) => {
            let m = compile(m, arena, types);
            let c = arena.intern(c, types);
            CTerm::Coerce(m.into(), c)
        }
        Term::Blame(p, ty) => CTerm::Blame(*p, types.intern(ty)),
        Term::If(c, t, e) => CTerm::If(
            compile(c, arena, types).into(),
            compile(t, arena, types).into(),
            compile(e, arena, types).into(),
        ),
        Term::Let(x, m, n) => CTerm::Let(
            x.clone(),
            compile(m, arena, types).into(),
            compile(n, arena, types).into(),
        ),
        Term::Fix(f, x, dom, cod, b) => CTerm::Fix(
            f.clone(),
            x.clone(),
            types.intern(dom),
            types.intern(cod),
            compile(b, arena, types).into(),
        ),
    }
}

/// Rebuilds the tree form; inverse of [`compile`].
pub fn decompile(term: &CTerm, arena: &CArena, types: &TypeArena) -> Term {
    match term {
        CTerm::Const(k) => Term::Const(*k),
        CTerm::Op(op, args) => Term::Op(
            *op,
            args.iter().map(|a| decompile(a, arena, types)).collect(),
        ),
        CTerm::Var(x) => Term::Var(x.clone()),
        CTerm::Lam(x, ty, b) => Term::Lam(
            x.clone(),
            types.resolve(*ty),
            decompile(b, arena, types).into(),
        ),
        CTerm::App(a, b) => Term::App(
            decompile(a, arena, types).into(),
            decompile(b, arena, types).into(),
        ),
        CTerm::Coerce(m, c) => {
            Term::Coerce(decompile(m, arena, types).into(), arena.resolve(*c, types))
        }
        CTerm::Blame(p, ty) => Term::Blame(*p, types.resolve(*ty)),
        CTerm::If(c, t, e) => Term::If(
            decompile(c, arena, types).into(),
            decompile(t, arena, types).into(),
            decompile(e, arena, types).into(),
        ),
        CTerm::Let(x, m, n) => Term::Let(
            x.clone(),
            decompile(m, arena, types).into(),
            decompile(n, arena, types).into(),
        ),
        CTerm::Fix(f, x, dom, cod, b) => Term::Fix(
            f.clone(),
            x.clone(),
            types.resolve(*dom),
            types.resolve(*cod),
            decompile(b, arena, types).into(),
        ),
    }
}

/// Computes the type of a closed compiled λC term in place:
/// `⊢C M : A` on ids. Agrees with [`type_of`](crate::type_of) on the
/// decompiled tree (same verdict, resolved type, and [`TypeError`]).
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not well typed.
pub fn type_of_compiled(
    term: &CTerm,
    arena: &CArena,
    types: &mut TypeArena,
) -> Result<TypeId, TypeError> {
    type_of_compiled_in(&mut Vec::new(), term, arena, types)
}

/// Computes the type of a compiled λC term in an interned environment.
///
/// # Errors
///
/// See [`type_of_compiled`].
pub fn type_of_compiled_in(
    env: &mut Vec<(Name, TypeId)>,
    term: &CTerm,
    arena: &CArena,
    types: &mut TypeArena,
) -> Result<TypeId, TypeError> {
    match term {
        CTerm::Const(k) => Ok(types.base(k.base_type())),
        CTerm::Var(x) => env
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| *t)
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        CTerm::Op(op, args) => {
            let (params, result) = op.signature();
            if params.len() != args.len() {
                return Err(TypeError::OpArity {
                    op: op.name(),
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in params.iter().zip(args) {
                let param_id = types.base(*param);
                if !check_compiled_in(env, arg, param_id, arena, types) {
                    let found = type_of_compiled_in(env, arg, arena, types)?;
                    return Err(TypeError::Mismatch {
                        expected: param.ty(),
                        found: types.resolve_shared(found),
                        context: "operator argument",
                    });
                }
            }
            Ok(types.base(result))
        }
        CTerm::Lam(x, dom, body) => {
            env.push((x.clone(), *dom));
            let cod = type_of_compiled_in(env, body, arena, types);
            env.pop();
            Ok(types.fun(*dom, cod?))
        }
        CTerm::App(l, m) => {
            let lt = type_of_compiled_in(env, l, arena, types)?;
            let mt = type_of_compiled_in(env, m, arena, types)?;
            match types.node(lt) {
                TNode::Fun(dom, cod) => {
                    if dom == mt || check_compiled_in(env, m, dom, arena, types) {
                        Ok(cod)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: types.resolve_shared(dom),
                            found: types.resolve_shared(mt),
                            context: "function argument",
                        })
                    }
                }
                _ => Err(TypeError::NotAFunction(types.resolve_shared(lt))),
            }
        }
        CTerm::Coerce(m, c) => {
            let mt = type_of_compiled_in(env, m, arena, types)?;
            if arena.is_exact(*c) {
                let (src, tgt) = (arena.source(*c), arena.target(*c));
                if src == mt || check_compiled_in(env, m, src, arena, types) {
                    Ok(tgt)
                } else {
                    Err(TypeError::Mismatch {
                        expected: types.resolve_shared(src),
                        found: types.resolve_shared(mt),
                        context: "coercion source",
                    })
                }
            } else {
                // The coercion contains ⊥ (or a mismatched `;`): fall
                // back to the relational tree judgment against the
                // representative target — a cold path the front end
                // never produces.
                let tree = arena.resolve(*c, types);
                let tgt = arena.target(*c);
                if tree.check_interned(mt, tgt, types) {
                    Ok(tgt)
                } else {
                    Err(TypeError::BadCoercion {
                        subject: types.resolve_shared(mt),
                        coercion: tree.to_string(),
                    })
                }
            }
        }
        CTerm::Blame(_, ty) => Ok(*ty),
        CTerm::If(cond, then_, else_) => {
            let bool_id = types.base(bc_syntax::BaseType::Bool);
            if !check_compiled_in(env, cond, bool_id, arena, types) {
                let ct = type_of_compiled_in(env, cond, arena, types)?;
                return Err(TypeError::Mismatch {
                    expected: Type::BOOL,
                    found: types.resolve_shared(ct),
                    context: "if condition",
                });
            }
            let tt = type_of_compiled_in(env, then_, arena, types)?;
            let et = type_of_compiled_in(env, else_, arena, types)?;
            if tt == et || check_compiled_in(env, else_, tt, arena, types) {
                Ok(tt)
            } else if check_compiled_in(env, then_, et, arena, types) {
                Ok(et)
            } else {
                Err(TypeError::Mismatch {
                    expected: types.resolve_shared(tt),
                    found: types.resolve_shared(et),
                    context: "if branches",
                })
            }
        }
        CTerm::Let(x, m, n) => {
            let mt = type_of_compiled_in(env, m, arena, types)?;
            env.push((x.clone(), mt));
            let nt = type_of_compiled_in(env, n, arena, types);
            env.pop();
            nt
        }
        CTerm::Fix(f, x, dom, cod, body) => {
            let fun_id = types.fun(*dom, *cod);
            env.push((f.clone(), fun_id));
            env.push((x.clone(), *dom));
            let bt = type_of_compiled_in(env, body, arena, types);
            env.pop();
            env.pop();
            let bt = bt?;
            if bt != *cod {
                env.push((f.clone(), fun_id));
                env.push((x.clone(), *dom));
                let ok = check_compiled_in(env, body, *cod, arena, types);
                env.pop();
                env.pop();
                if !ok {
                    return Err(TypeError::Mismatch {
                        expected: types.resolve_shared(*cod),
                        found: types.resolve_shared(bt),
                        context: "fix body",
                    });
                }
            }
            Ok(fun_id)
        }
    }
}

/// The *checking* judgment `Γ ⊢C M : A` on the compiled form; the id
/// counterpart of [`has_type`](crate::typing::has_type).
pub fn has_type_compiled(term: &CTerm, ty: TypeId, arena: &CArena, types: &mut TypeArena) -> bool {
    check_compiled_in(&mut Vec::new(), term, ty, arena, types)
}

fn check_compiled_in(
    env: &mut Vec<(Name, TypeId)>,
    term: &CTerm,
    expected: TypeId,
    arena: &CArena,
    types: &mut TypeArena,
) -> bool {
    match term {
        // blame p : A for every A.
        CTerm::Blame(_, _) => true,
        CTerm::Coerce(m, c) => {
            if arena.is_exact(*c) {
                arena.target(*c) == expected
                    && check_compiled_in(env, m, arena.source(*c), arena, types)
            } else {
                // ⊥ leaves the target unconstrained: use the
                // relational tree judgment against the expected type.
                match type_of_compiled_in(env, m, arena, types) {
                    Ok(mt) => arena.resolve(*c, types).check_interned(mt, expected, types),
                    Err(_) => false,
                }
            }
        }
        CTerm::If(c, t, e) => {
            let bool_id = types.base(bc_syntax::BaseType::Bool);
            check_compiled_in(env, c, bool_id, arena, types)
                && check_compiled_in(env, t, expected, arena, types)
                && check_compiled_in(env, e, expected, arena, types)
        }
        CTerm::Lam(x, dom, body) => match types.node(expected) {
            TNode::Fun(d, c) => {
                if d != *dom {
                    return false;
                }
                env.push((x.clone(), d));
                let ok = check_compiled_in(env, body, c, arena, types);
                env.pop();
                ok
            }
            _ => false,
        },
        CTerm::Fix(f, x, dom, cod, body) => {
            let fun_id = types.fun(*dom, *cod);
            if fun_id != expected {
                return false;
            }
            env.push((f.clone(), fun_id));
            env.push((x.clone(), *dom));
            let ok = check_compiled_in(env, body, *cod, arena, types);
            env.pop();
            env.pop();
            ok
        }
        CTerm::Let(x, m, n) => match type_of_compiled_in(env, m, arena, types) {
            Ok(mt) => {
                env.push((x.clone(), mt));
                let ok = check_compiled_in(env, n, expected, arena, types);
                env.pop();
                ok
            }
            Err(_) => false,
        },
        CTerm::App(l, m) => {
            if let Ok(lt) = type_of_compiled_in(env, l, arena, types) {
                if let TNode::Fun(d, c) = types.node(lt) {
                    if c == expected && check_compiled_in(env, m, d, arena, types) {
                        return true;
                    }
                }
            }
            // The function may be a ⊥-coerced term whose synthesised
            // type is only a representative: check it against the
            // function type demanded by the argument and the context.
            match type_of_compiled_in(env, m, arena, types) {
                Ok(mt) => {
                    let fun_id = types.fun(mt, expected);
                    check_compiled_in(env, l, fun_id, arena, types)
                }
                Err(_) => false,
            }
        }
        // Synthesising forms: fall back to equality.
        CTerm::Op(op, args) => {
            let (params, result) = op.signature();
            types.base(result) == expected
                && params.len() == args.len()
                && params.iter().zip(args).all(|(param, arg)| {
                    let param_id = types.base(*param);
                    check_compiled_in(env, arg, param_id, arena, types)
                })
        }
        _ => type_of_compiled_in(env, term, arena, types).is_ok_and(|t| t == expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coercion::Coercion;
    use crate::type_of;
    use bc_syntax::{BaseType, Ground, Label};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }

    fn samples() -> Vec<Term> {
        let p = Label::new(0);
        vec![
            Term::int(1)
                .coerce(Coercion::inj(gi()))
                .coerce(Coercion::proj(gi(), p)),
            Term::lam("x", Type::DYN, Term::var("x"))
                .coerce(Coercion::fun(Coercion::inj(gi()), Coercion::proj(gi(), p)))
                .app(Term::int(2)),
            Term::int(1).coerce(Coercion::fail(gi(), p, Ground::Base(BaseType::Bool))),
            Term::fix(
                "f",
                "x",
                Type::INT,
                Type::INT,
                Term::var("f").app(Term::var("x")),
            ),
            Term::let_(
                "y",
                Term::int(1).coerce(Coercion::inj(gi())),
                Term::var("y").coerce(Coercion::proj(gi(), p.complement())),
            ),
        ]
    }

    #[test]
    fn compile_round_trips() {
        let mut types = TypeArena::new();
        let mut arena = CArena::new();
        for t in samples() {
            let compiled = compile(&t, &mut arena, &mut types);
            assert_eq!(decompile(&compiled, &arena, &types), t, "{t}");
            assert_eq!(compiled.size(&arena), t.size(), "{t}");
            assert_eq!(compiled.coercion_size(&arena), t.coercion_size(), "{t}");
        }
    }

    #[test]
    fn compiled_checker_agrees_with_the_tree_checker() {
        let mut types = TypeArena::new();
        let mut arena = CArena::new();
        for t in samples() {
            let compiled = compile(&t, &mut arena, &mut types);
            match (type_of(&t), type_of_compiled(&compiled, &arena, &mut types)) {
                (Ok(tree_ty), Ok(id)) => {
                    assert_eq!(types.resolve(id), tree_ty, "{t}");
                    assert!(has_type_compiled(&compiled, id, &arena, &mut types), "{t}");
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2, "{t}"),
                (tree, compiled) => panic!("{t}: tree {tree:?} vs compiled {compiled:?}"),
            }
        }
    }

    #[test]
    fn recompiling_interns_nothing_new() {
        let mut types = TypeArena::new();
        let mut arena = CArena::new();
        for t in samples() {
            compile(&t, &mut arena, &mut types);
        }
        let (warm_c, warm_t) = (arena.len(), types.len());
        for t in samples() {
            compile(&t, &mut arena, &mut types);
        }
        assert_eq!((arena.len(), types.len()), (warm_c, warm_t));
    }
}
