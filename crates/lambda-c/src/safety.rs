//! Blame safety `M safeC q` for λC (Figure 3).
//!
//! The definition is pleasingly simple compared to λB's: a coercion is
//! safe for `q` iff it does not mention `q`, and a term is safe for
//! `q` iff all its coercions are (and it contains no literal
//! `blame q`). §3.1 of the paper uses this simplicity to *justify* the
//! subtle subtyping-based definition for λB (Lemma 9).

use bc_syntax::Label;

use crate::term::Term;

/// Whether `M safeC q`: no coercion in `M` mentions `q` and no literal
/// `blame q` occurs in `M`.
pub fn term_safe_for(term: &Term, q: Label) -> bool {
    match term {
        Term::Const(_) | Term::Var(_) => true,
        Term::Blame(p, _) => *p != q,
        Term::Op(_, args) => args.iter().all(|a| term_safe_for(a, q)),
        Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => term_safe_for(b, q),
        Term::Coerce(m, c) => term_safe_for(m, q) && c.safe_for(q),
        Term::App(a, b) | Term::Let(_, a, b) => term_safe_for(a, q) && term_safe_for(b, q),
        Term::If(a, b, c) => term_safe_for(a, q) && term_safe_for(b, q) && term_safe_for(c, q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coercion::Coercion;
    use crate::eval::{run, Outcome};
    use crate::typing::type_of;
    use bc_syntax::{BaseType, Ground, Label, Type};

    #[test]
    fn safety_is_preserved_and_predicts_blame() {
        // Progress + preservation for safety on a failing program.
        let gi = Ground::Base(BaseType::Int);
        let gb = Ground::Base(BaseType::Bool);
        let q = Label::new(1);
        let t = Term::int(7)
            .coerce(Coercion::inj(gi))
            .coerce(Coercion::proj(gb, q));
        assert!(!term_safe_for(&t, q));
        let r = Label::new(2);
        assert!(term_safe_for(&t, r));
        let ty = type_of(&t).unwrap();
        // Step and re-check safety for r at each step.
        let mut cur = t;
        loop {
            match crate::eval::step(&cur, &ty) {
                crate::eval::Step::Next(n) => {
                    assert!(term_safe_for(&n, r), "safety preserved at {n}");
                    cur = n;
                }
                crate::eval::Step::Blame(l) => {
                    assert_eq!(l, q);
                    break;
                }
                crate::eval::Step::Value => panic!("expected blame"),
            }
        }
    }

    #[test]
    fn safe_terms_do_not_blame_that_label() {
        let gi = Ground::Base(BaseType::Int);
        let p = Label::new(0);
        let t = Term::int(7)
            .coerce(Coercion::inj(gi))
            .coerce(Coercion::proj(gi, p));
        // The coercion mentions p, so the term is unsafe for p —
        // but it happens to succeed anyway (safety is conservative).
        assert!(!term_safe_for(&t, p));
        match run(&t, 100).unwrap().outcome {
            Outcome::Value(v) => assert_eq!(v, Term::int(7)),
            other => panic!("unexpected {other:?}"),
        }
        // And it is safe for every other label, so no other label can
        // be blamed.
        assert!(term_safe_for(&t, Label::new(9)));
        let _ = Type::DYN;
    }
}
