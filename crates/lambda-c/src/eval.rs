//! Small-step reduction `M ⟶C N` for the coercion calculus
//! (Figure 3).
//!
//! The rules are the "obvious" ones the paper observes nobody had
//! written down before:
//!
//! ```text
//! E[V⟨id_A⟩]        ⟶ E[V]
//! E[(V⟨c→d⟩) W]     ⟶ E[(V (W⟨c⟩))⟨d⟩]
//! E[V⟨G!⟩⟨G?p⟩]     ⟶ E[V]
//! E[V⟨G!⟩⟨H?p⟩]     ⟶ blame p      (G ≠ H)
//! E[V⟨c ; d⟩]       ⟶ E[V⟨c⟩⟨d⟩]
//! E[V⟨⊥GpH⟩]        ⟶ blame p
//! E[blame p]        ⟶ blame p      (E ≠ □)
//! ```
//!
//! Note that λC *breaks compositions apart* (`c ; d` splits into two
//! applications) where λS *assembles them* — this is exactly the
//! difference the bisimulation of §4.1 mediates.

use std::fmt;

use bc_syntax::{Constant, Label, Type};

use crate::coercion::Coercion;
use crate::subst::subst;
use crate::term::Term;
use crate::typing::{type_of, TypeError};

/// The result of attempting one reduction step on a closed term.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `M ⟶C N`.
    Next(Term),
    /// The term is a value.
    Value,
    /// The term is `blame p`.
    Blame(Label),
}

/// The final outcome of evaluating a term. Fuel exhaustion is not an
/// outcome — [`run`] reports it as [`RunError::FuelExhausted`].
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Evaluation converged to a value.
    Value(Term),
    /// Evaluation allocated blame.
    Blame(Label),
}

/// Why a fueled run produced no [`Outcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The term is not closed and well typed.
    IllTyped(TypeError),
    /// The fuel bound was reached; the term may diverge.
    FuelExhausted {
        /// Steps actually taken before fuel ran out.
        steps: u64,
        /// The largest term size observed up to the cutoff.
        peak_size: usize,
        /// The largest total coercion size observed up to the cutoff —
        /// the truncated run's space measurement.
        peak_coercion_size: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::IllTyped(e) => write!(f, "ill-typed program: {e}"),
            RunError::FuelExhausted { steps, .. } => {
                write!(f, "fuel exhausted after {steps} steps")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<TypeError> for RunError {
    fn from(e: TypeError) -> RunError {
        RunError::IllTyped(e)
    }
}

/// Metrics and result of a fueled run.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The final outcome.
    pub outcome: Outcome,
    /// Number of reduction steps taken.
    pub steps: u64,
    /// Peak term size observed.
    pub peak_size: usize,
    /// Peak total coercion size observed (the λC space metric).
    pub peak_coercion_size: usize,
}

enum Sub {
    Stepped(Term),
    Value,
    Raise(Label),
}

/// Performs one reduction step on a closed, well-typed λC term.
///
/// # Panics
///
/// Panics if the term is open or ill-typed.
pub fn step(term: &Term, program_ty: &Type) -> Step {
    if let Term::Blame(p, _) = term {
        return Step::Blame(*p);
    }
    if term.is_value() {
        return Step::Value;
    }
    match step_sub(term) {
        Sub::Stepped(t) => Step::Next(t),
        Sub::Raise(p) => Step::Next(Term::Blame(p, program_ty.clone())),
        Sub::Value => unreachable!("non-value term did not step: {term}"),
    }
}

fn step_sub(term: &Term) -> Sub {
    if term.is_value() {
        return Sub::Value;
    }
    match term {
        Term::Const(_) | Term::Lam(_, _, _) | Term::Fix(_, _, _, _, _) => Sub::Value,
        Term::Var(x) => panic!("evaluation reached a free variable `{x}`"),
        Term::Blame(p, _) => Sub::Raise(*p),
        Term::Op(op, args) => {
            for (i, arg) in args.iter().enumerate() {
                match step_sub(arg) {
                    Sub::Stepped(a2) => {
                        let mut args2 = args.clone();
                        args2[i] = a2;
                        return Sub::Stepped(Term::Op(*op, args2));
                    }
                    Sub::Raise(p) => return Sub::Raise(p),
                    Sub::Value => continue,
                }
            }
            let consts: Vec<Constant> = args
                .iter()
                .map(|a| match a {
                    Term::Const(k) => *k,
                    other => panic!("operator argument is not a constant: {other}"),
                })
                .collect();
            Sub::Stepped(Term::Const(op.apply(&consts)))
        }
        Term::If(cond, then_, else_) => match step_sub(cond) {
            Sub::Stepped(c2) => Sub::Stepped(Term::If(c2.into(), then_.clone(), else_.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => match &**cond {
                Term::Const(Constant::Bool(true)) => Sub::Stepped((**then_).clone()),
                Term::Const(Constant::Bool(false)) => Sub::Stepped((**else_).clone()),
                other => panic!("if condition is not a boolean: {other}"),
            },
        },
        Term::Let(x, m, n) => match step_sub(m) {
            Sub::Stepped(m2) => Sub::Stepped(Term::Let(x.clone(), m2.into(), n.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => Sub::Stepped(subst(n, x, m)),
        },
        Term::App(l, m) => match step_sub(l) {
            Sub::Stepped(l2) => Sub::Stepped(Term::App(l2.into(), m.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => match step_sub(m) {
                Sub::Stepped(m2) => Sub::Stepped(Term::App(l.clone(), m2.into())),
                Sub::Raise(p) => Sub::Raise(p),
                Sub::Value => apply(l, m),
            },
        },
        Term::Coerce(m, c) => match step_sub(m) {
            Sub::Stepped(m2) => Sub::Stepped(Term::Coerce(m2.into(), c.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => coerce_value(m, c),
        },
    }
}

/// Contracts an application whose both sides are values.
fn apply(fun: &Term, arg: &Term) -> Sub {
    match fun {
        Term::Lam(x, _, body) => Sub::Stepped(subst(body, x, arg)),
        Term::Fix(f, x, _, _, body) => {
            let unrolled = subst(body, f, fun);
            Sub::Stepped(subst(&unrolled, x, arg))
        }
        // (V⟨c→d⟩) W ⟶ (V (W⟨c⟩))⟨d⟩
        Term::Coerce(v, Coercion::Fun(c, d)) => {
            let coerced_arg = arg.clone().coerce((**c).clone());
            Sub::Stepped(Term::App(v.clone(), coerced_arg.into()).coerce((**d).clone()))
        }
        other => panic!("applied a non-function value: {other}"),
    }
}

/// Reduces `V⟨c⟩` where `V` is a value and the whole term is not.
fn coerce_value(value: &Term, c: &Coercion) -> Sub {
    match c {
        // V⟨id_A⟩ ⟶ V
        Coercion::Id(_) => Sub::Stepped(value.clone()),
        // V⟨c ; d⟩ ⟶ V⟨c⟩⟨d⟩
        Coercion::Seq(c1, c2) => {
            Sub::Stepped(value.clone().coerce((**c1).clone()).coerce((**c2).clone()))
        }
        // V⟨⊥GpH⟩ ⟶ blame p
        Coercion::Fail(_, p, _) => Sub::Raise(*p),
        // V⟨G!⟩⟨G?p⟩ ⟶ V  /  V⟨G!⟩⟨H?p⟩ ⟶ blame p
        Coercion::Proj(h, p) => match value {
            Term::Coerce(w, Coercion::Inj(g)) => {
                if g == h {
                    Sub::Stepped((**w).clone())
                } else {
                    Sub::Raise(*p)
                }
            }
            other => panic!("projected a non-injection value: {other}"),
        },
        Coercion::Inj(_) | Coercion::Fun(_, _) => {
            unreachable!("injections and function coercions of values are values")
        }
    }
}

/// Evaluates a closed, well-typed λC term for at most `fuel` steps.
///
/// # Errors
///
/// Returns [`RunError::IllTyped`] if the term is not closed and well
/// typed, and [`RunError::FuelExhausted`] (carrying the steps actually
/// taken) if the fuel bound is reached.
pub fn run(term: &Term, fuel: u64) -> Result<Run, RunError> {
    let ty = type_of(term)?;
    let mut current = term.clone();
    let mut steps = 0u64;
    let mut peak_size = current.size();
    let mut peak_coercion_size = current.coercion_size();
    loop {
        match step(&current, &ty) {
            Step::Value => {
                return Ok(Run {
                    outcome: Outcome::Value(current),
                    steps,
                    peak_size,
                    peak_coercion_size,
                })
            }
            Step::Blame(p) => {
                return Ok(Run {
                    outcome: Outcome::Blame(p),
                    steps,
                    peak_size,
                    peak_coercion_size,
                })
            }
            Step::Next(next) => {
                // Charge fuel *before* committing the step, so a
                // zero-fuel run reports zero steps (values still
                // complete at any fuel: Step::Value returns above).
                if steps >= fuel {
                    return Err(RunError::FuelExhausted {
                        steps,
                        peak_size,
                        peak_coercion_size,
                    });
                }
                steps += 1;
                peak_size = peak_size.max(next.size());
                peak_coercion_size = peak_coercion_size.max(next.coercion_size());
                current = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Ground, Label, Op};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn gb() -> Ground {
        Ground::Base(BaseType::Bool)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }

    fn eval_value(term: &Term) -> Term {
        match run(term, 10_000).expect("well typed").outcome {
            Outcome::Value(v) => v,
            other => panic!("expected value, got {other:?}"),
        }
    }

    fn eval_blame(term: &Term) -> Label {
        match run(term, 10_000).expect("well typed").outcome {
            Outcome::Blame(l) => l,
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn identity_vanishes() {
        let t = Term::int(1).coerce(Coercion::id(Type::INT));
        assert_eq!(eval_value(&t), Term::int(1));
    }

    #[test]
    fn matched_injection_projection_cancels() {
        let t = Term::int(7)
            .coerce(Coercion::inj(gi()))
            .coerce(Coercion::proj(gi(), p(0)));
        assert_eq!(eval_value(&t), Term::int(7));
    }

    #[test]
    fn mismatched_projection_blames_the_projection() {
        let t = Term::int(7)
            .coerce(Coercion::inj(gi()))
            .coerce(Coercion::proj(gb(), p(1)));
        assert_eq!(eval_blame(&t), p(1));
    }

    #[test]
    fn composition_splits() {
        let t = Term::int(7).coerce(Coercion::inj(gi()).seq(Coercion::proj(gi(), p(0))));
        let ty = type_of(&t).unwrap();
        match step(&t, &ty) {
            Step::Next(n) => {
                assert_eq!(
                    n,
                    Term::int(7)
                        .coerce(Coercion::inj(gi()))
                        .coerce(Coercion::proj(gi(), p(0)))
                );
            }
            other => panic!("expected split, got {other:?}"),
        }
        assert_eq!(eval_value(&t), Term::int(7));
    }

    #[test]
    fn failure_blames() {
        let t = Term::int(7).coerce(Coercion::fail(gi(), p(2), gb()));
        assert_eq!(eval_blame(&t), p(2));
    }

    #[test]
    fn function_coercion_wraps() {
        // (λx:Int. x+1)⟨Int?p → Int!⟩ applied to 1⟨Int!⟩:
        // the argument is projected, the result injected.
        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let wrapped = inc.coerce(Coercion::fun(
            Coercion::proj(gi(), p(0)),
            Coercion::inj(gi()),
        ));
        let t = wrapped.app(Term::int(1).coerce(Coercion::inj(gi())));
        assert_eq!(eval_value(&t), Term::int(2).coerce(Coercion::inj(gi())));
    }

    #[test]
    fn function_coercion_blames_bad_argument() {
        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let wrapped = inc.coerce(Coercion::fun(
            Coercion::proj(gi(), p(0).complement()),
            Coercion::inj(gi()),
        ));
        let t = wrapped.app(Term::bool(true).coerce(Coercion::inj(gb())));
        assert_eq!(eval_blame(&t), p(0).complement());
    }

    #[test]
    fn preservation_along_a_run() {
        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let ii = Type::fun(Type::INT, Type::INT);
        let c = Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi()))
            .seq(Coercion::inj(Ground::Fun));
        // inc⟨(Int?p→Int!) ; (?→?)!⟩⟨(?→?)?q⟩ applied to 3⟨Int!⟩,
        // result projected back to Int.
        let t = inc
            .coerce(c)
            .coerce(Coercion::proj(Ground::Fun, p(1)))
            .app(Term::int(3).coerce(Coercion::inj(gi())))
            .coerce(Coercion::proj(gi(), p(2)));
        let ty = type_of(&t).unwrap();
        assert_eq!(ty, Type::INT);
        let mut cur = t;
        loop {
            match step(&cur, &ty) {
                Step::Next(n) => {
                    assert_eq!(type_of(&n), Ok(ty.clone()), "preservation at {n}");
                    cur = n;
                }
                Step::Value => {
                    assert_eq!(cur, Term::int(4));
                    break;
                }
                Step::Blame(l) => panic!("unexpected blame {l}"),
            }
        }
        let _ = ii;
    }

    #[test]
    fn blame_aborts_from_depth() {
        let t = Term::op2(Op::Add, Term::int(1), Term::Blame(p(5), Type::INT));
        assert_eq!(eval_blame(&t), p(5));
    }
}
