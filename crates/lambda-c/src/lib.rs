//! The coercion calculus λC (Figure 3 of Siek–Thiemann–Wadler,
//! PLDI 2015; coercions after Henglein 1994).
//!
//! λC replaces the casts of λB by *coercion application* `M⟨c⟩`, where
//! coercions are built from identities `id_A`, injections `G!`,
//! projections `G?p`, function coercions `c → d`, compositions
//! `c ; d`, and failures `⊥GpH`. The paper's novel insight for λC is
//! to equip Henglein's coercions with the obvious reduction rules,
//! yielding a calculus that is "close to correct by construction" and
//! runs in lockstep with λB.
//!
//! The crate provides:
//!
//! * [`Coercion`] — the coercion grammar with typing `c : A ⇒ B`,
//!   height `‖c‖`, and blame safety;
//! * [`Term`] — λC terms (Figure 3, plus `if`/`let`/`fix` as standard
//!   constructs);
//! * [`typing`], [`eval`], [`safety`] — the static and dynamic
//!   semantics.
//!
//! # Example
//!
//! ```
//! use bc_lambda_c::{coercion::Coercion, eval::{run, Outcome}, Term};
//! use bc_syntax::{Ground, Label, BaseType};
//!
//! let p = Label::new(0);
//! // 1⟨Int!⟩⟨Bool?p⟩ ⟶ blame p
//! let g = Ground::Base(BaseType::Int);
//! let h = Ground::Base(BaseType::Bool);
//! let m = Term::int(1).coerce(Coercion::inj(g)).coerce(Coercion::proj(h, p));
//! assert_eq!(run(&m, 10).unwrap().outcome, Outcome::Blame(p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod carena;
pub mod coercion;
pub mod cterm;
pub mod eval;
pub mod safety;
pub mod subst;
pub mod term;
pub mod typing;

pub use carena::{CArena, CArenaStats, CCoercionId, CNode};
pub use coercion::Coercion;
pub use cterm::{has_type_compiled, CTerm};
pub use term::Term;
pub use typing::{type_of, type_of_interned};
