//! Terms of the coercion calculus (Figure 3).

use std::fmt;
use std::rc::Rc;

use bc_syntax::{Constant, Label, Name, Op, Type};

use crate::coercion::Coercion;

/// Terms `L, M, N` of λC: as λB, but casts are replaced by coercion
/// application `M⟨c⟩`.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A constant `k`.
    Const(Constant),
    /// An operator application `op(M₁, …, Mₙ)`.
    Op(Op, Vec<Term>),
    /// A variable `x`.
    Var(Name),
    /// An abstraction `λx:A. N`.
    Lam(Name, Type, Rc<Term>),
    /// An application `L M`.
    App(Rc<Term>, Rc<Term>),
    /// A coercion application `M⟨c⟩`.
    Coerce(Rc<Term>, Coercion),
    /// Allocated blame `blame p` (carries its type; see λB).
    Blame(Label, Type),
    /// A conditional `if L then M else N`.
    If(Rc<Term>, Rc<Term>, Rc<Term>),
    /// A let binding `let x = M in N`.
    Let(Name, Rc<Term>, Rc<Term>),
    /// A recursive function `fix f (x:A):B. N`.
    Fix(Name, Name, Type, Type, Rc<Term>),
}

impl Term {
    /// An integer constant.
    pub fn int(n: i64) -> Term {
        Term::Const(Constant::Int(n))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Term {
        Term::Const(Constant::Bool(b))
    }

    /// A variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Name::from(name))
    }

    /// An abstraction `λname:ty. body`.
    pub fn lam(name: &str, ty: Type, body: Term) -> Term {
        Term::Lam(Name::from(name), ty, Rc::new(body))
    }

    /// An application `self arg`.
    #[must_use]
    pub fn app(self, arg: Term) -> Term {
        Term::App(Rc::new(self), Rc::new(arg))
    }

    /// The coercion application `self⟨c⟩`.
    #[must_use]
    pub fn coerce(self, c: Coercion) -> Term {
        Term::Coerce(Rc::new(self), c)
    }

    /// A binary operator application.
    pub fn op2(op: Op, lhs: Term, rhs: Term) -> Term {
        Term::Op(op, vec![lhs, rhs])
    }

    /// A conditional.
    pub fn ite(cond: Term, then_: Term, else_: Term) -> Term {
        Term::If(Rc::new(cond), Rc::new(then_), Rc::new(else_))
    }

    /// A let binding.
    pub fn let_(name: &str, bound: Term, body: Term) -> Term {
        Term::Let(Name::from(name), Rc::new(bound), Rc::new(body))
    }

    /// A recursive function.
    pub fn fix(fun: &str, arg: &str, dom: Type, cod: Type, body: Term) -> Term {
        Term::Fix(Name::from(fun), Name::from(arg), dom, cod, Rc::new(body))
    }

    /// Whether the term is a value `V` (Figure 3): a constant, an
    /// abstraction (or `fix`), a value under a function coercion
    /// `V⟨c→d⟩`, or a value under an injection `V⟨G!⟩`.
    pub fn is_value(&self) -> bool {
        match self {
            Term::Const(_) | Term::Lam(_, _, _) | Term::Fix(_, _, _, _, _) => true,
            Term::Coerce(m, c) => {
                m.is_value() && matches!(c, Coercion::Fun(_, _) | Coercion::Inj(_))
            }
            _ => false,
        }
    }

    /// The number of syntax nodes in the term (coercion nodes counted
    /// via [`Coercion::size`]).
    pub fn size(&self) -> usize {
        match self {
            Term::Const(_) | Term::Var(_) | Term::Blame(_, _) => 1,
            Term::Op(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => 1 + b.size(),
            Term::Coerce(m, c) => 1 + m.size() + c.size(),
            Term::App(a, b) | Term::Let(_, a, b) => 1 + a.size() + b.size(),
            Term::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
        }
    }

    /// The total size of all coercions in the term — the λC space
    /// metric (coercions pile up under naive composition).
    pub fn coercion_size(&self) -> usize {
        match self {
            Term::Const(_) | Term::Var(_) | Term::Blame(_, _) => 0,
            Term::Op(_, args) => args.iter().map(Term::coercion_size).sum(),
            Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => b.coercion_size(),
            Term::Coerce(m, c) => m.coercion_size() + c.size(),
            Term::App(a, b) | Term::Let(_, a, b) => a.coercion_size() + b.coercion_size(),
            Term::If(a, b, c) => a.coercion_size() + b.coercion_size() + c.coercion_size(),
        }
    }

    /// Every blame label mentioned in the term, in syntactic order.
    pub fn labels(&self) -> Vec<Label> {
        fn go(t: &Term, out: &mut Vec<Label>) {
            match t {
                Term::Const(_) | Term::Var(_) => {}
                Term::Blame(p, _) => out.push(*p),
                Term::Op(_, args) => args.iter().for_each(|a| go(a, out)),
                Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => go(b, out),
                Term::Coerce(m, c) => {
                    go(m, out);
                    out.extend(c.labels());
                }
                Term::App(a, b) | Term::Let(_, a, b) => {
                    go(a, out);
                    go(b, out);
                }
                Term::If(a, b, c) => {
                    go(a, out);
                    go(b, out);
                    go(c, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }
}

impl From<Constant> for Term {
    fn from(k: Constant) -> Term {
        Term::Const(k)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(k) => write!(f, "{k}"),
            Term::Var(x) => write!(f, "{x}"),
            Term::Op(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Term::Lam(x, ty, b) => write!(f, "(fun ({x} : {ty}) => {b})"),
            Term::App(a, b) => write!(f, "({a} {b})"),
            Term::Coerce(m, c) => write!(f, "{m}<{c}>"),
            Term::Blame(p, _) => write!(f, "blame {p}"),
            Term::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Term::Let(x, m, n) => write!(f, "(let {x} = {m} in {n})"),
            Term::Fix(g, x, dom, cod, b) => {
                write!(f, "(fix {g} ({x} : {dom}) : {cod} => {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Ground};

    #[test]
    fn value_recognition() {
        let gi = Ground::Base(BaseType::Int);
        assert!(Term::int(1).is_value());
        assert!(Term::int(1).coerce(Coercion::inj(gi)).is_value());
        assert!(Term::lam("x", Type::INT, Term::var("x"))
            .coerce(Coercion::fun(
                Coercion::id(Type::INT),
                Coercion::id(Type::INT)
            ))
            .is_value());
        // Identity, projection, composition, and failure coercions are
        // redexes on values, not values.
        assert!(!Term::int(1).coerce(Coercion::id(Type::INT)).is_value());
        assert!(!Term::int(1)
            .coerce(Coercion::inj(gi))
            .coerce(Coercion::proj(gi, Label::new(0)))
            .is_value());
        assert!(!Term::int(1)
            .coerce(Coercion::id(Type::INT).seq(Coercion::inj(gi)))
            .is_value());
    }

    #[test]
    fn metrics() {
        let gi = Ground::Base(BaseType::Int);
        let m = Term::int(1)
            .coerce(Coercion::inj(gi))
            .coerce(Coercion::proj(gi, Label::new(3)));
        assert_eq!(m.coercion_size(), 2);
        assert_eq!(m.labels(), vec![Label::new(3)]);
        assert_eq!(m.size(), 5);
    }

    #[test]
    fn display() {
        let m = Term::int(1).coerce(Coercion::inj(Ground::Base(BaseType::Int)));
        assert_eq!(m.to_string(), "1<(Int)!>");
    }
}
