//! Property tests for the compiled λS term IR: on random well-typed
//! programs, the CEK machine run on the compiled [`STerm`] agrees with
//! the machine run on the tree [`Term`] — same value, same blame, same
//! space metrics — and the compiled path never re-interns a coercion
//! tree at run time.
//!
//! [`STerm`]: bc_core::sterm::STerm
//! [`Term`]: bc_core::Term

use bc_core::CompileCtx;
use bc_machine::cek_s;
use bc_machine::metrics::MachineOutcome;
use bc_testkit::Gen;
use proptest::prelude::*;

const FUEL: u64 = 20_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `compile_term` preserves the machine semantics: same outcome
    /// (value shape or blame label) and, because compilation changes
    /// the representation and not the evaluation, the very same step
    /// count and space peaks.
    #[test]
    fn machine_on_compiled_ir_agrees_with_machine_on_trees(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let mut ctx = CompileCtx::new();
        let (tree, compiled) = gen.compiled_s(&mut ctx, &ty, 4);

        let on_tree = cek_s::run(&tree, FUEL);
        let on_ir = cek_s::run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, FUEL);

        prop_assert_eq!(
            on_tree.outcome.to_observation(),
            on_ir.outcome.to_observation(),
            "outcome diverged on {}", tree
        );
        prop_assert_eq!(on_tree.metrics.steps, on_ir.metrics.steps, "{}", tree);
        prop_assert_eq!(on_tree.metrics.peak_frames, on_ir.metrics.peak_frames, "{}", tree);
        prop_assert_eq!(
            on_tree.metrics.peak_cast_frames,
            on_ir.metrics.peak_cast_frames,
            "{}", tree
        );
        prop_assert_eq!(
            on_tree.metrics.peak_cast_size,
            on_ir.metrics.peak_cast_size,
            "{}", tree
        );
    }

    /// The compiled path performs zero tree interning, on every
    /// generated program — the structural guarantee, not just the
    /// boundary-loop benchmark's.
    #[test]
    fn compiled_runs_never_reintern(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let mut ctx = CompileCtx::new();
        let (_, compiled) = gen.compiled_s(&mut ctx, &ty, 4);
        let run = cek_s::run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, FUEL);
        prop_assert_eq!(
            run.metrics.reuse.tree_interns, 0,
            "compiled run hash-walked a coercion tree"
        );
    }

    /// Warm repeats share everything: a second compiled run of the
    /// same program composes nothing structurally and interns no new
    /// nodes.
    #[test]
    fn warm_compiled_reruns_are_pure_cache_hits(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let mut ctx = CompileCtx::new();
        let (_, compiled) = gen.compiled_s(&mut ctx, &ty, 3);
        let first = cek_s::run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, FUEL);
        // Skip programs that time out: their second run may take a
        // different prefix of the evaluation.
        if first.outcome != MachineOutcome::Timeout {
            let second = cek_s::run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, FUEL);
            prop_assert_eq!(first.outcome, second.outcome.clone());
            prop_assert_eq!(second.metrics.reuse.tree_interns, 0);
            prop_assert_eq!(second.metrics.reuse.node_misses, 0, "new arena nodes on rerun");
            prop_assert_eq!(second.metrics.reuse.compose_misses, 0, "structural compose on rerun");
        }
    }
}
