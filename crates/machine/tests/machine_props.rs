//! Property tests for the abstract machines: agreement with the
//! substitution-based small-step semantics on random well-typed
//! programs, and the space bound of the λS machine (E15/E21).

use bc_machine::{cek_b, cek_c, cek_s};
use bc_testkit::Gen;
use bc_translate::bisim::{observe_run_b, observe_run_c, observe_run_s, Observation};
use bc_translate::{term_b_to_c, term_c_to_s};
use proptest::prelude::*;

const FUEL: u64 = 20_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every machine agrees with its calculus' small-step semantics.
    #[test]
    fn machines_agree_with_small_step(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let m = gen.term_b(&ty, 4);

        let small_b = observe_run_b(&m, FUEL);
        let mach_b = cek_b::run(&m, FUEL).outcome.to_observation();

        let mc = term_b_to_c(&m);
        let small_c = observe_run_c(&mc, FUEL);
        let mach_c = cek_c::run(&mc, FUEL).outcome.to_observation();

        let ms = term_c_to_s(&mc);
        let small_s = observe_run_s(&ms, FUEL);
        let mach_s = cek_s::run(&ms, FUEL).outcome.to_observation();

        // Timeouts may land at different step counts between a
        // machine and a term rewriter; all decisive outcomes agree.
        let outcomes = [small_b, mach_b, small_c, mach_c, small_s, mach_s];
        let decisive: Vec<_> = outcomes
            .iter()
            .filter(|o| **o != Observation::Timeout)
            .collect();
        for pair in decisive.windows(2) {
            prop_assert_eq!(pair[0], pair[1]);
        }
    }

    /// The λS machine never holds two adjacent coercion frames: its
    /// peak coercion frame count is bounded by half the peak frame
    /// count plus one.
    #[test]
    fn lambda_s_machine_merges_adjacent_frames(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let m = gen.term_b(&ty, 4);
        let ms = term_c_to_s(&term_b_to_c(&m));
        let run = cek_s::run(&ms, FUEL);
        prop_assert!(
            run.metrics.peak_cast_frames <= run.metrics.peak_frames / 2 + 1,
            "adjacent coercion frames survived: {} of {}",
            run.metrics.peak_cast_frames,
            run.metrics.peak_frames
        );
    }
}

/// The headline bound, swept: λS machine space is flat in n while the
/// λB machine grows linearly.
#[test]
fn space_series() {
    let mut b_frames = Vec::new();
    let mut s_frames = Vec::new();
    for n in [8i64, 32, 128] {
        let m = bc_lambda_b::programs::even_odd_mixed(n);
        let ms = term_c_to_s(&term_b_to_c(&m));
        b_frames.push(cek_b::run(&m, u64::MAX).metrics.peak_cast_frames);
        s_frames.push(cek_s::run(&ms, u64::MAX).metrics.peak_cast_frames);
    }
    assert!(
        b_frames[2] > b_frames[0] + 100,
        "λB leak missing: {b_frames:?}"
    );
    assert_eq!(s_frames[0], s_frames[2], "λS space grew: {s_frames:?}");
}
