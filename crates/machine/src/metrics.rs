//! Shared instrumentation types for the abstract machines.

use bc_syntax::Label;
use bc_translate::bisim::Observation;

/// The final outcome of a machine run, reported as the
/// calculus-agnostic [`Observation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineOutcome {
    /// The machine halted with a value (observed shape).
    Value(Observation),
    /// The machine allocated blame.
    Blame(Label),
    /// Fuel was exhausted.
    Timeout,
}

impl MachineOutcome {
    /// Converts to a plain observation (merging the `Blame`/`Timeout`
    /// constructors with their `Observation` counterparts).
    pub fn to_observation(&self) -> Observation {
        match self {
            MachineOutcome::Value(o) => o.clone(),
            MachineOutcome::Blame(p) => Observation::Blame(*p),
            MachineOutcome::Timeout => Observation::Timeout,
        }
    }
}

/// Space/time instrumentation collected during a machine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Machine transitions taken.
    pub steps: u64,
    /// Peak continuation depth (total frames).
    pub peak_frames: usize,
    /// Peak number of cast/coercion frames on the continuation — the
    /// quantity that leaks in λB/λC and stays O(1) in λS.
    pub peak_cast_frames: usize,
    /// Peak total size (syntax nodes) of all casts/coercions held by
    /// the continuation.
    pub peak_cast_size: usize,
}

impl Metrics {
    /// Records a snapshot of the continuation.
    pub fn observe(&mut self, frames: usize, cast_frames: usize, cast_size: usize) {
        self.peak_frames = self.peak_frames.max(frames);
        self.peak_cast_frames = self.peak_cast_frames.max(cast_frames);
        self.peak_cast_size = self.peak_cast_size.max(cast_size);
    }
}

/// Result of a machine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineRun {
    /// The outcome.
    pub outcome: MachineOutcome,
    /// The collected metrics.
    pub metrics: Metrics,
}
