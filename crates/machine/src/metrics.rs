//! Shared instrumentation types for the abstract machines.

use bc_syntax::Label;
use bc_translate::bisim::Observation;

/// The final outcome of a machine run, reported as the
/// calculus-agnostic [`Observation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineOutcome {
    /// The machine halted with a value (observed shape).
    Value(Observation),
    /// The machine allocated blame.
    Blame(Label),
    /// Fuel was exhausted.
    Timeout,
}

impl MachineOutcome {
    /// Converts to a plain observation (merging the `Blame`/`Timeout`
    /// constructors with their `Observation` counterparts).
    pub fn to_observation(&self) -> Observation {
        match self {
            MachineOutcome::Value(o) => o.clone(),
            MachineOutcome::Blame(p) => Observation::Blame(*p),
            MachineOutcome::Timeout => Observation::Timeout,
        }
    }
}

/// Arena/cache reuse counters for one machine run — the deltas of the
/// coercion arena's and compose cache's counters between entering and
/// leaving the machine.
///
/// Only the λS machine populates these (λB/λC have no arena; their
/// runs report all-zero reuse). They let benches and server code
/// *observe* sharing instead of guessing: on the compiled-IR path
/// [`tree_interns`](ReuseStats::tree_interns) is zero — a boundary
/// crossing loads a `Copy` id and merges through the cache — while the
/// tree path pays one hash walk per `Coerce` node compiled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Tree-interning operations (coercion-tree nodes hash-walked
    /// into the arena) performed during the run. Zero on the compiled
    /// path: every coercion was interned once, at compile time.
    pub tree_interns: u64,
    /// Node interns answered by the hash-consing index.
    pub node_hits: u64,
    /// Node interns that stored a new arena node.
    pub node_misses: u64,
    /// Frame/proxy merges answered by the compose cache.
    pub compose_hits: u64,
    /// Frame/proxy merges computed structurally (then cached).
    pub compose_misses: u64,
    /// Memoized pairs evicted by the cache's second-chance policy.
    pub cache_evictions: u64,
    /// Distinct coercion nodes in the arena when the run finished.
    pub arena_nodes: usize,
}

/// Space/time instrumentation collected during a machine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Machine transitions taken.
    pub steps: u64,
    /// Peak continuation depth (total frames).
    pub peak_frames: usize,
    /// Peak number of cast/coercion frames on the continuation — the
    /// quantity that leaks in λB/λC and stays O(1) in λS.
    pub peak_cast_frames: usize,
    /// Peak total size (syntax nodes) of all casts/coercions held by
    /// the continuation.
    pub peak_cast_size: usize,
    /// Arena/cache reuse during the run (λS machine only; all-zero
    /// for λB/λC).
    pub reuse: ReuseStats,
}

impl Metrics {
    /// Records a snapshot of the continuation.
    pub fn observe(&mut self, frames: usize, cast_frames: usize, cast_size: usize) {
        self.peak_frames = self.peak_frames.max(frames);
        self.peak_cast_frames = self.peak_cast_frames.max(cast_frames);
        self.peak_cast_size = self.peak_cast_size.max(cast_size);
    }
}

/// Result of a machine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineRun {
    /// The outcome.
    pub outcome: MachineOutcome,
    /// The collected metrics.
    pub metrics: Metrics,
}

/// Result of driving a resumable machine for one fuel slice: either
/// the run finished (value, blame, or fuel exhaustion — a final
/// [`MachineRun`]) or the slice budget ran out first and the machine
/// parked itself for a later `resume`.
///
/// Every machine checks **fuel before slice**: a slice at least as
/// large as the remaining fuel can never park, so `resume(start(t,
/// fuel), fuel)` is exactly the unsliced run. Slicing only chooses
/// where the loop returns — steps, peaks, and outcomes are identical
/// to an unsliced run by construction (and property-tested in
/// `tests/sched.rs`).
#[derive(Debug)]
pub enum SliceResult<P> {
    /// The run finished; no machine state remains.
    Done(MachineRun),
    /// Preempted: the parked state resumes where it left off.
    Parked(P),
}
