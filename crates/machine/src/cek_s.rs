//! The CEK machine for λS — the space-efficient machine (in the style
//! of Siek–Garcia 2012).
//!
//! It differs from [`crate::cek_c`] in exactly one way: **pushing a
//! coercion frame onto a continuation whose top frame is already a
//! coercion frame composes the two with `s # t`** instead of stacking
//! them. Since composition preserves height (Proposition 14) and
//! canonical coercions of bounded height have bounded size, the
//! continuation never holds more than one bounded coercion per
//! non-coercion frame: tail calls across typed/untyped boundaries run
//! in constant space.
//!
//! The same merging is applied to values: coercing an already-coerced
//! value composes the coercions, so proxy chains never grow either.

use std::rc::Rc;

use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
use bc_core::compose::compose;
use bc_core::term::Term;
use bc_syntax::{Constant, Label, Name, Op};
use bc_translate::bisim::Observation;

use crate::metrics::{MachineOutcome, MachineRun, Metrics};

/// Run-time values of the λS machine.
#[derive(Debug, Clone)]
pub enum Value {
    /// A constant.
    Const(Constant),
    /// A closure.
    Closure {
        /// Parameter name.
        param: Name,
        /// Function body.
        body: Rc<Term>,
        /// Captured environment.
        env: Env,
    },
    /// A recursive closure.
    FixClosure {
        /// Function name.
        fun: Name,
        /// Parameter name.
        param: Name,
        /// Function body.
        body: Rc<Term>,
        /// Captured environment.
        env: Env,
    },
    /// An uncoerced value under a *single* coercion (`U⟨s→t⟩` or
    /// `U⟨g;G!⟩`); the machine maintains the invariant that coerced
    /// values never nest.
    Coerced {
        /// The underlying (uncoerced) value.
        value: Rc<Value>,
        /// The single, merged coercion.
        coercion: SpaceCoercion,
    },
}

impl Value {
    /// The calculus-agnostic observation of this value.
    pub fn observe(&self) -> Observation {
        match self {
            Value::Const(k) => Observation::Constant(*k),
            Value::Closure { .. } | Value::FixClosure { .. } => Observation::Function,
            Value::Coerced { value, coercion } => match coercion {
                SpaceCoercion::Mid(Intermediate::Inj(g, ground)) => {
                    let payload = match g {
                        GroundCoercion::IdBase(_) => value.observe(),
                        GroundCoercion::Fun(_, _) => Observation::Function,
                    };
                    Observation::Injected(*ground, Box::new(payload))
                }
                SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(_, _))) => {
                    Observation::Function
                }
                other => unreachable!("coerced value with non-value coercion {other}"),
            },
        }
    }
}

/// A persistent environment.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Name,
    value: Value,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env(None)
    }

    /// Extends the environment with a binding.
    #[must_use]
    pub fn bind(&self, name: Name, value: Value) -> Env {
        Env(Some(Rc::new(EnvNode {
            name,
            value,
            rest: self.clone(),
        })))
    }

    fn lookup(&self, name: &Name) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

enum Frame {
    AppArg { arg: Term, env: Env },
    AppCall { fun: Value },
    OpFrame { op: Op, done: Vec<Value>, rest: Vec<Term>, env: Env },
    If { then_: Term, else_: Term, env: Env },
    Let { name: Name, body: Term, env: Env },
    CoerceFrame(SpaceCoercion),
}

enum Control {
    Eval(Term, Env),
    Ret(Value),
}

struct Machine {
    stack: Vec<Frame>,
    metrics: Metrics,
    coercion_frames: usize,
    coercion_size: usize,
}

impl Machine {
    fn push(&mut self, f: Frame) {
        if let Frame::CoerceFrame(c) = &f {
            self.coercion_frames += 1;
            self.coercion_size += c.size();
        }
        self.stack.push(f);
        self.metrics
            .observe(self.stack.len(), self.coercion_frames, self.coercion_size);
    }

    /// Pushes a coercion frame, *merging* with an existing top
    /// coercion frame — the one-line change that makes the machine
    /// space-efficient.
    fn push_coercion(&mut self, s: SpaceCoercion) {
        if let Some(Frame::CoerceFrame(t)) = self.stack.last() {
            // The value will meet `s` first and `t` second: replace
            // the top frame with `s # t`.
            let merged = compose(&s, t);
            self.coercion_size = self.coercion_size - t.size() + merged.size();
            let top = self.stack.len() - 1;
            self.stack[top] = Frame::CoerceFrame(merged);
            self.metrics
                .observe(self.stack.len(), self.coercion_frames, self.coercion_size);
        } else {
            self.push(Frame::CoerceFrame(s));
        }
    }

    fn pop(&mut self) -> Option<Frame> {
        let f = self.stack.pop();
        if let Some(Frame::CoerceFrame(c)) = &f {
            self.coercion_frames -= 1;
            self.coercion_size -= c.size();
        }
        f
    }
}

/// Applies a coercion to a value immediately, merging with any
/// existing proxy coercion.
fn coerce_value(v: Value, s: &SpaceCoercion) -> Result<Value, Label> {
    if let Value::Coerced { value, coercion } = &v {
        // Never nest: compose with the existing proxy.
        return coerce_value((**value).clone(), &compose(coercion, s));
    }
    match s {
        SpaceCoercion::IdDyn => Ok(v),
        SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::IdBase(_))) => Ok(v),
        SpaceCoercion::Mid(Intermediate::Fail(_, p, _)) => Err(*p),
        SpaceCoercion::Mid(Intermediate::Inj(_, _))
        | SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(_, _))) => {
            Ok(Value::Coerced {
                value: Rc::new(v),
                coercion: s.clone(),
            })
        }
        SpaceCoercion::Proj(_, _, _) => {
            unreachable!("projection applied to an uncoerced value (which cannot have type ?)")
        }
    }
}

/// Runs a closed, well-typed λS term on the space-efficient CEK
/// machine.
///
/// # Panics
///
/// Panics on open or ill-typed input.
pub fn run(term: &Term, fuel: u64) -> MachineRun {
    let mut m = Machine {
        stack: Vec::new(),
        metrics: Metrics::default(),
        coercion_frames: 0,
        coercion_size: 0,
    };
    let mut control = Control::Eval(term.clone(), Env::new());
    loop {
        if m.metrics.steps >= fuel {
            return MachineRun {
                outcome: MachineOutcome::Timeout,
                metrics: m.metrics,
            };
        }
        m.metrics.steps += 1;
        control = match control {
            Control::Eval(t, env) => match t {
                Term::Const(k) => Control::Ret(Value::Const(k)),
                Term::Var(x) => Control::Ret(
                    env.lookup(&x)
                        .unwrap_or_else(|| panic!("unbound variable `{x}`"))
                        .clone(),
                ),
                Term::Lam(param, _, body) => Control::Ret(Value::Closure { param, body, env }),
                Term::Fix(fun, param, _, _, body) => {
                    Control::Ret(Value::FixClosure { fun, param, body, env })
                }
                Term::App(l, r) => {
                    m.push(Frame::AppArg {
                        arg: (*r).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*l).clone(), env)
                }
                Term::Op(op, mut args) => {
                    let rest = args.split_off(1);
                    let first = args.pop().expect("operators have at least one argument");
                    m.push(Frame::OpFrame {
                        op,
                        done: Vec::new(),
                        rest,
                        env: env.clone(),
                    });
                    Control::Eval(first, env)
                }
                Term::Coerce(inner, s) => {
                    m.push_coercion(s);
                    Control::Eval((*inner).clone(), env)
                }
                Term::Blame(p, _) => {
                    return MachineRun {
                        outcome: MachineOutcome::Blame(p),
                        metrics: m.metrics,
                    }
                }
                Term::If(c, t2, e) => {
                    m.push(Frame::If {
                        then_: (*t2).clone(),
                        else_: (*e).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*c).clone(), env)
                }
                Term::Let(x, bound, body) => {
                    m.push(Frame::Let {
                        name: x,
                        body: (*body).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*bound).clone(), env)
                }
            },
            Control::Ret(v) => match m.pop() {
                None => {
                    return MachineRun {
                        outcome: MachineOutcome::Value(v.observe()),
                        metrics: m.metrics,
                    }
                }
                Some(Frame::AppArg { arg, env }) => {
                    m.push(Frame::AppCall { fun: v });
                    Control::Eval(arg, env)
                }
                Some(Frame::AppCall { fun }) => match apply(&mut m, fun, v) {
                    Ok(c) => c,
                    Err(p) => {
                        return MachineRun {
                            outcome: MachineOutcome::Blame(p),
                            metrics: m.metrics,
                        }
                    }
                },
                Some(Frame::OpFrame {
                    op,
                    mut done,
                    mut rest,
                    env,
                }) => {
                    done.push(v);
                    if rest.is_empty() {
                        let consts: Vec<Constant> = done
                            .iter()
                            .map(|v| match v {
                                Value::Const(k) => *k,
                                other => unreachable!("operator got non-constant {other:?}"),
                            })
                            .collect();
                        Control::Ret(Value::Const(op.apply(&consts)))
                    } else {
                        let next = rest.remove(0);
                        m.push(Frame::OpFrame {
                            op,
                            done,
                            rest,
                            env: env.clone(),
                        });
                        Control::Eval(next, env)
                    }
                }
                Some(Frame::If { then_, else_, env }) => match v {
                    Value::Const(Constant::Bool(true)) => Control::Eval(then_, env),
                    Value::Const(Constant::Bool(false)) => Control::Eval(else_, env),
                    other => unreachable!("if condition returned {other:?}"),
                },
                Some(Frame::Let { name, body, env }) => {
                    let env = env.bind(name, v);
                    Control::Eval(body, env)
                }
                Some(Frame::CoerceFrame(s)) => match coerce_value(v, &s) {
                    Ok(v2) => Control::Ret(v2),
                    Err(p) => {
                        return MachineRun {
                            outcome: MachineOutcome::Blame(p),
                            metrics: m.metrics,
                        }
                    }
                },
            },
        };
    }
}

fn apply(m: &mut Machine, fun: Value, arg: Value) -> Result<Control, Label> {
    match fun {
        Value::Closure { param, body, env } => {
            let env = env.bind(param, arg);
            Ok(Control::Eval((*body).clone(), env))
        }
        Value::FixClosure {
            fun: f,
            param,
            body,
            env,
        } => {
            let self_val = Value::FixClosure {
                fun: f.clone(),
                param: param.clone(),
                body: body.clone(),
                env: env.clone(),
            };
            let env = env.bind(f, self_val).bind(param, arg);
            Ok(Control::Eval((*body).clone(), env))
        }
        Value::Coerced { value, coercion } => match coercion {
            SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(s, t))) => {
                // (U⟨s→t⟩) V: coerce the argument by s, push (merging!)
                // the result coercion t, apply the proxied function.
                let arg2 = coerce_value(arg, &s)?;
                m.push_coercion((*t).clone());
                apply(m, (*value).clone(), arg2)
            }
            other => unreachable!("applied a non-function coercion {other}"),
        },
        other => unreachable!("applied a non-function value {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_lambda_b::programs;
    use bc_translate::{term_b_to_c, term_c_to_s};

    fn to_s(t: &bc_lambda_b::Term) -> Term {
        term_c_to_s(&term_b_to_c(t))
    }

    #[test]
    fn machine_agrees_with_small_step() {
        use bc_core::eval;
        use bc_translate::bisim::observe_s;
        for (name, t) in [
            ("boundary_loop", programs::boundary_loop(6)),
            ("even_odd_mixed", programs::even_odd_mixed(5)),
            ("even_untyped", programs::even_untyped(4)),
            ("wrapped_identity", programs::wrapped_identity(4)),
        ] {
            let ts = to_s(&t);
            let small = observe_s(&eval::run(&ts, 1_000_000).unwrap().outcome);
            let machine = run(&ts, 1_000_000).outcome.to_observation();
            assert_eq!(small, machine, "{name}");
        }
    }

    #[test]
    fn tail_calls_run_in_constant_space() {
        // THE headline claim: peak frames and peak coercion size are
        // the same for 16 and 256 iterations.
        let m16 = run(&to_s(&programs::boundary_loop(16)), 10_000_000);
        let m256 = run(&to_s(&programs::boundary_loop(256)), 10_000_000);
        assert_eq!(
            m16.metrics.peak_frames, m256.metrics.peak_frames,
            "λS continuation must not grow with n"
        );
        assert_eq!(m16.metrics.peak_cast_size, m256.metrics.peak_cast_size);
        assert!(m16.metrics.peak_cast_frames <= 2);
    }

    #[test]
    fn mixed_even_odd_is_space_bounded_too() {
        let m8 = run(&to_s(&programs::even_odd_mixed(8)), 10_000_000);
        let m128 = run(&to_s(&programs::even_odd_mixed(128)), 10_000_000);
        assert_eq!(m8.metrics.peak_frames, m128.metrics.peak_frames);
    }

    #[test]
    fn blame_labels_survive_merging() {
        use bc_syntax::{Label, Type};
        let t = bc_lambda_b::Term::int(1)
            .cast(Type::INT, Label::new(0), Type::DYN)
            .cast(Type::DYN, Label::new(1), Type::BOOL);
        let out = run(&to_s(&t), 100).outcome;
        assert_eq!(out, MachineOutcome::Blame(Label::new(1)));
    }

    #[test]
    fn proxies_do_not_accumulate_on_values() {
        // Wrapping a function 2·n times merges into one proxy.
        let t = to_s(&programs::wrapped_identity(64));
        let m = run(&t, 1_000_000);
        assert!(matches!(m.outcome, MachineOutcome::Value(_)));
    }
}
