//! The CEK machine for λS — the space-efficient machine (in the style
//! of Siek–Garcia 2012).
//!
//! It differs from [`crate::cek_c`] in exactly one way: **pushing a
//! coercion frame onto a continuation whose top frame is already a
//! coercion frame composes the two with `s # t`** instead of stacking
//! them. Since composition preserves height (Proposition 14) and
//! canonical coercions of bounded height have bounded size, the
//! continuation never holds more than one bounded coercion per
//! non-coercion frame: tail calls across typed/untyped boundaries run
//! in constant space.
//!
//! The same merging is applied to values: coercing an already-coerced
//! value composes the coercions, so proxy chains never grow either.
//!
//! # The compiled IR
//!
//! This machine runs on the **compiled λS term IR**
//! ([`bc_core::sterm::STerm`]): coercion nodes hold `Copy`
//! [`CoercionId`]s minted once by [`bc_core::sterm::compile_term`],
//! and every frame/proxy merge goes through the [`ComposeCache`]. A
//! boundary crossing is therefore an id load plus a cached O(1)
//! composition — **zero interning, zero coercion allocation** — which
//! the per-run [`crate::metrics::ReuseStats`] counters make
//! observable (`tree_interns == 0` on the compiled path).
//!
//! Three entry points:
//!
//! * [`run_compiled_in`] — the fast path: evaluate an already-compiled
//!   [`STerm`] against the arena and cache it was compiled into (as
//!   the runtime's `Session` does across repeated runs);
//! * [`run_in`] — accept a tree [`Term`], compile it into the
//!   caller-owned arena (hash-consing makes repeat compiles
//!   allocation-free), then run;
//! * [`run`] — a self-contained run with fresh arenas.

use std::rc::Rc;

use bc_core::arena::{CoercionArena, CoercionId, ComposeCache, GNode, INode, SNode};
use bc_core::sterm::{compile_term, STerm};
use bc_core::term::Term;
use bc_syntax::{Constant, Label, Name, Op, TypeArena};
use bc_translate::bisim::Observation;

use crate::metrics::{MachineOutcome, MachineRun, Metrics, ReuseStats, SliceResult};

/// Run-time values of the λS machine.
#[derive(Debug, Clone)]
pub enum Value {
    /// A constant.
    Const(Constant),
    /// A closure.
    Closure {
        /// Parameter name.
        param: Name,
        /// Function body (compiled).
        body: Rc<STerm>,
        /// Captured environment.
        env: Env,
    },
    /// A recursive closure.
    FixClosure {
        /// Function name.
        fun: Name,
        /// Parameter name.
        param: Name,
        /// Function body (compiled).
        body: Rc<STerm>,
        /// Captured environment.
        env: Env,
    },
    /// An uncoerced value under a *single* coercion (`U⟨s→t⟩` or
    /// `U⟨g;G!⟩`); the machine maintains the invariant that coerced
    /// values never nest.
    Coerced {
        /// The underlying (uncoerced) value.
        value: Rc<Value>,
        /// The single, merged coercion (interned).
        coercion: CoercionId,
    },
}

impl Value {
    /// The calculus-agnostic observation of this value, read through
    /// the arena that interned its coercions.
    pub fn observe(&self, arena: &CoercionArena) -> Observation {
        match self {
            Value::Const(k) => Observation::Constant(*k),
            Value::Closure { .. } | Value::FixClosure { .. } => Observation::Function,
            Value::Coerced { value, coercion } => match arena.node(*coercion) {
                SNode::Mid(INode::Inj(g, ground)) => {
                    let payload = match g {
                        GNode::IdBase(_) => value.observe(arena),
                        GNode::Fun(_, _) => Observation::Function,
                    };
                    Observation::Injected(ground, Box::new(payload))
                }
                SNode::Mid(INode::Ground(GNode::Fun(_, _))) => Observation::Function,
                _ => unreachable!(
                    "coerced value with non-value coercion {}",
                    arena.resolve(*coercion)
                ),
            },
        }
    }
}

/// A persistent environment.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Name,
    value: Value,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env(None)
    }

    /// Extends the environment with a binding.
    #[must_use]
    pub fn bind(&self, name: Name, value: Value) -> Env {
        Env(Some(Rc::new(EnvNode {
            name,
            value,
            rest: self.clone(),
        })))
    }

    fn lookup(&self, name: &Name) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

// Variant names deliberately carry the -Frame suffix: "cast frame" /
// "coercion frame" is the paper's terminology for what leaks in
// λB/λC and merges in λS.
#[allow(clippy::enum_variant_names)]
enum Frame {
    AppArg {
        arg: STerm,
        env: Env,
    },
    AppCall {
        fun: Value,
    },
    OpFrame {
        op: Op,
        done: Vec<Value>,
        rest: Vec<STerm>,
        env: Env,
    },
    If {
        then_: STerm,
        else_: STerm,
        env: Env,
    },
    Let {
        name: Name,
        body: STerm,
        env: Env,
    },
    CoerceFrame(CoercionId),
}

enum Control {
    Eval(STerm, Env),
    Ret(Value),
}

struct Machine<'a> {
    stack: Vec<Frame>,
    metrics: Metrics,
    coercion_frames: usize,
    coercion_size: usize,
    arena: &'a mut CoercionArena,
    cache: &'a mut ComposeCache,
}

impl Machine<'_> {
    fn push(&mut self, f: Frame) {
        if let Frame::CoerceFrame(c) = &f {
            self.coercion_frames += 1;
            self.coercion_size += self.arena.size(*c);
        }
        self.stack.push(f);
        self.metrics
            .observe(self.stack.len(), self.coercion_frames, self.coercion_size);
    }

    /// Pushes a coercion frame, *merging* with an existing top
    /// coercion frame — the one-line change that makes the machine
    /// space-efficient. The merge is a [`ComposeCache`] lookup when
    /// the pair has been composed before.
    fn push_coercion(&mut self, s: CoercionId) {
        if let Some(Frame::CoerceFrame(t)) = self.stack.last() {
            // The value will meet `s` first and `t` second: replace
            // the top frame with `s # t`.
            let t = *t;
            let merged = self.arena.compose(self.cache, s, t);
            self.coercion_size = self.coercion_size - self.arena.size(t) + self.arena.size(merged);
            let top = self.stack.len() - 1;
            self.stack[top] = Frame::CoerceFrame(merged);
            self.metrics
                .observe(self.stack.len(), self.coercion_frames, self.coercion_size);
        } else {
            self.push(Frame::CoerceFrame(s));
        }
    }

    fn pop(&mut self) -> Option<Frame> {
        let f = self.stack.pop();
        if let Some(Frame::CoerceFrame(c)) = &f {
            self.coercion_frames -= 1;
            self.coercion_size -= self.arena.size(*c);
        }
        f
    }

    /// Applies a coercion to a value immediately, merging with any
    /// existing proxy coercion.
    fn coerce_value(&mut self, v: Value, s: CoercionId) -> Result<Value, Label> {
        if let Value::Coerced { value, coercion } = &v {
            // Never nest: compose with the existing proxy (cached).
            let merged = self.arena.compose(self.cache, *coercion, s);
            return self.coerce_value((**value).clone(), merged);
        }
        match self.arena.node(s) {
            SNode::IdDyn => Ok(v),
            SNode::Mid(INode::Ground(GNode::IdBase(_))) => Ok(v),
            SNode::Mid(INode::Fail(_, p, _)) => Err(p),
            SNode::Mid(INode::Inj(_, _)) | SNode::Mid(INode::Ground(GNode::Fun(_, _))) => {
                Ok(Value::Coerced {
                    value: Rc::new(v),
                    coercion: s,
                })
            }
            SNode::Proj(_, _, _) => {
                unreachable!("projection applied to an uncoerced value (which cannot have type ?)")
            }
        }
    }
}

/// Runs a closed, well-typed λS term on the space-efficient CEK
/// machine with a fresh arena and compose cache.
///
/// # Panics
///
/// Panics on open or ill-typed input.
pub fn run(term: &Term, fuel: u64) -> MachineRun {
    let mut arena = CoercionArena::new();
    let mut cache = ComposeCache::new();
    run_in(term, &mut arena, &mut cache, fuel)
}

/// Runs a tree term reusing a caller-owned arena and compose cache:
/// the term is compiled into the arena (a hash walk per node — free
/// allocation-wise once the coercions are already interned) and then
/// evaluated on the compiled path.
///
/// This entry point re-lowers the term on every call (an O(term-size)
/// walk). Callers that run the *same* program repeatedly should
/// compile once with [`compile_term`] and loop over
/// [`run_compiled_in`] instead — that is what the runtime's `Session`
/// does.
///
/// The reported [`ReuseStats`] *include* the compile-time interning,
/// so this entry point shows `tree_interns > 0` where
/// [`run_compiled_in`] shows zero — the observable difference between
/// the tree path and the compiled path.
///
/// # Panics
///
/// Panics on open or ill-typed input.
pub fn run_in(
    term: &Term,
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    fuel: u64,
) -> MachineRun {
    let arena_before = arena.stats();
    let cache_before = cache.stats();
    // The machine never consults type annotations at run time, so the
    // type arena is a per-call throwaway: its lifetime is bounded by
    // the call (no hidden growing state), and callers who want the
    // annotations interned for keeps use compile_term +
    // run_compiled_in with their own TypeArena.
    let mut types = TypeArena::new();
    let compiled = compile_term(term, arena, &mut types);
    // The before-stats predate the compile, so the reported reuse
    // *includes* the compile-time interning (see the doc above).
    let paused = fresh_paused(&compiled, fuel, arena_before, cache_before);
    match resume_compiled_in(paused, arena, cache, fuel) {
        SliceResult::Done(run) => run,
        SliceResult::Parked(_) => unreachable!("a slice of the whole fuel cannot park"),
    }
}

/// Runs an already-compiled term against the arena and cache it was
/// compiled into — the fast path: every boundary crossing is an id
/// load plus a cached merge, with zero interning
/// (`metrics.reuse.tree_interns == 0`).
///
/// The term's ids are only meaningful in the arena that
/// [`compile_term`] interned them into (keep the pair together, e.g.
/// via [`bc_core::sterm::CompileCtx`]): an id that is out of bounds
/// for `arena` panics, but an in-bounds id from a *different* arena
/// denotes whatever that slot holds — like [`CoercionArena::node`],
/// this function cannot detect foreign ids.
///
/// # Panics
///
/// Panics on open or ill-typed input, or if the term's ids are out of
/// bounds for `arena`.
pub fn run_compiled_in(
    term: &STerm,
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    fuel: u64,
) -> MachineRun {
    let paused = start_compiled_in(term, arena, cache, fuel);
    match resume_compiled_in(paused, arena, cache, fuel) {
        SliceResult::Done(run) => run,
        SliceResult::Parked(_) => unreachable!("a slice of the whole fuel cannot park"),
    }
}

/// A preempted λS machine run, parked between fuel slices.
///
/// Unlike the machine itself, the parked state holds **no arena or
/// cache borrows** — only the continuation stack, control, metrics,
/// and the arena/cache counters captured at [`start_compiled_in`]
/// (so the final [`ReuseStats`] delta spans all slices, exactly as an
/// unsliced run would report). Each [`resume_compiled_in`] call
/// re-borrows the arena/cache pair the term was compiled into; pass a
/// different pair and the ids mean something else entirely (the same
/// foreign-id caveat as [`run_compiled_in`]).
///
/// Values, environments, and the `STerm` spine are `Rc`-shared, so a
/// parked run is deliberately **not** `Send`: it stays on the worker
/// that started it (an `Arc` spine costs this machine ~30% end to
/// end, measured in PR 6, so the scheduler parks per worker instead
/// of migrating machine state across threads).
pub struct Paused {
    stack: Vec<Frame>,
    metrics: Metrics,
    coercion_frames: usize,
    coercion_size: usize,
    control: Control,
    fuel: u64,
    arena_before: bc_core::arena::ArenaStats,
    cache_before: bc_core::arena::CacheStats,
}

impl Paused {
    /// Machine transitions taken so far, across all slices.
    pub fn steps(&self) -> u64 {
        self.metrics.steps
    }
}

fn fresh_paused(
    term: &STerm,
    fuel: u64,
    arena_before: bc_core::arena::ArenaStats,
    cache_before: bc_core::arena::CacheStats,
) -> Paused {
    Paused {
        stack: Vec::new(),
        metrics: Metrics::default(),
        coercion_frames: 0,
        coercion_size: 0,
        control: Control::Eval(term.clone(), Env::new()),
        fuel,
        arena_before,
        cache_before,
    }
}

/// Begins a resumable run of an already-compiled term. No steps are
/// taken; drive the machine with [`resume_compiled_in`], passing the
/// same arena/cache pair the term was compiled into.
pub fn start_compiled_in(
    term: &STerm,
    arena: &CoercionArena,
    cache: &ComposeCache,
    fuel: u64,
) -> Paused {
    fresh_paused(term, fuel, arena.stats(), cache.stats())
}

/// Runs a parked machine for at most `slice` further transitions
/// against the arena/cache pair its term was compiled into.
///
/// Fuel exhaustion is checked before the slice budget (both count
/// machine transitions), so a slice at least as large as the
/// remaining fuel can never park:
/// `resume_compiled_in(start_compiled_in(t, a, c, f), a, c, f)` is
/// exactly [`run_compiled_in`]`(t, a, c, f)`.
///
/// # Panics
///
/// Panics on open or ill-typed input, or if the term's ids are out of
/// bounds for `arena`.
pub fn resume_compiled_in(
    paused: Paused,
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    slice: u64,
) -> SliceResult<Paused> {
    let Paused {
        stack,
        metrics,
        coercion_frames,
        coercion_size,
        control,
        fuel,
        arena_before,
        cache_before,
    } = paused;
    let mut m = Machine {
        stack,
        metrics,
        coercion_frames,
        coercion_size,
        arena,
        cache,
    };
    let until = m.metrics.steps.saturating_add(slice);
    match exec_slice(&mut m, control, fuel, until) {
        Stepped::Done(mut run) => {
            run.metrics.reuse = reuse_delta(m.arena, m.cache, arena_before, cache_before);
            SliceResult::Done(run)
        }
        Stepped::Parked(control) => {
            let Machine {
                stack,
                metrics,
                coercion_frames,
                coercion_size,
                arena: _,
                cache: _,
            } = m;
            SliceResult::Parked(Paused {
                stack,
                metrics,
                coercion_frames,
                coercion_size,
                control,
                fuel,
                arena_before,
                cache_before,
            })
        }
    }
}

fn reuse_delta(
    arena: &CoercionArena,
    cache: &ComposeCache,
    arena_before: bc_core::arena::ArenaStats,
    cache_before: bc_core::arena::CacheStats,
) -> ReuseStats {
    let arena_after = arena.stats();
    let cache_after = cache.stats();
    ReuseStats {
        tree_interns: arena_after.tree_interns - arena_before.tree_interns,
        node_hits: arena_after.node_hits - arena_before.node_hits,
        node_misses: arena_after.node_misses - arena_before.node_misses,
        compose_hits: cache_after.hits - cache_before.hits,
        compose_misses: cache_after.misses - cache_before.misses,
        cache_evictions: cache_after.evictions - cache_before.evictions,
        arena_nodes: arena_after.nodes,
    }
}

/// What one slice of the exec loop produced: a finished run (reuse
/// stats not yet filled in) or the control to park with.
enum Stepped {
    Done(MachineRun),
    Parked(Control),
}

fn exec_slice(m: &mut Machine<'_>, mut control: Control, fuel: u64, until: u64) -> Stepped {
    loop {
        // THE fuel-unit invariant: fuel, slice budgets, and
        // `Metrics::steps` all count the same unit — one machine
        // transition — and the check happens before a transition
        // commits. Everything above (the pool's WARMUP_RUN_FUEL cap,
        // the scheduler's SliceBudget, FuelExhausted step reports)
        // relies on this 1:1 accounting; the λB/λC machines and the
        // small-step engines enforce the same order.
        if m.metrics.steps >= fuel {
            return Stepped::Done(MachineRun {
                outcome: MachineOutcome::Timeout,
                metrics: m.metrics.clone(),
            });
        }
        if m.metrics.steps >= until {
            return Stepped::Parked(control);
        }
        m.metrics.steps += 1;
        control = match control {
            Control::Eval(t, env) => match t {
                STerm::Const(k) => Control::Ret(Value::Const(k)),
                STerm::Var(x) => Control::Ret(
                    env.lookup(&x)
                        .unwrap_or_else(|| panic!("unbound variable `{x}`"))
                        .clone(),
                ),
                STerm::Lam(param, _, body) => Control::Ret(Value::Closure { param, body, env }),
                STerm::Fix(fun, param, _, _, body) => Control::Ret(Value::FixClosure {
                    fun,
                    param,
                    body,
                    env,
                }),
                STerm::App(l, r) => {
                    m.push(Frame::AppArg {
                        arg: (*r).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*l).clone(), env)
                }
                STerm::Op(op, mut args) => {
                    let rest = args.split_off(1);
                    let first = args.pop().expect("operators have at least one argument");
                    m.push(Frame::OpFrame {
                        op,
                        done: Vec::new(),
                        rest,
                        env: env.clone(),
                    });
                    Control::Eval(first, env)
                }
                STerm::Coerce(inner, s) => {
                    // The boundary crossing: `s` is a Copy id — no
                    // interning, no allocation; merging with an
                    // adjacent frame is a cached O(1) composition.
                    m.push_coercion(s);
                    Control::Eval((*inner).clone(), env)
                }
                STerm::Blame(p, _) => {
                    return Stepped::Done(MachineRun {
                        outcome: MachineOutcome::Blame(p),
                        metrics: m.metrics.clone(),
                    })
                }
                STerm::If(c, t2, e) => {
                    m.push(Frame::If {
                        then_: (*t2).clone(),
                        else_: (*e).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*c).clone(), env)
                }
                STerm::Let(x, bound, body) => {
                    m.push(Frame::Let {
                        name: x,
                        body: (*body).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*bound).clone(), env)
                }
            },
            Control::Ret(v) => match m.pop() {
                None => {
                    let observation = v.observe(m.arena);
                    return Stepped::Done(MachineRun {
                        outcome: MachineOutcome::Value(observation),
                        metrics: m.metrics.clone(),
                    });
                }
                Some(Frame::AppArg { arg, env }) => {
                    m.push(Frame::AppCall { fun: v });
                    Control::Eval(arg, env)
                }
                Some(Frame::AppCall { fun }) => match apply(m, fun, v) {
                    Ok(c) => c,
                    Err(p) => {
                        return Stepped::Done(MachineRun {
                            outcome: MachineOutcome::Blame(p),
                            metrics: m.metrics.clone(),
                        })
                    }
                },
                Some(Frame::OpFrame {
                    op,
                    mut done,
                    mut rest,
                    env,
                }) => {
                    done.push(v);
                    if rest.is_empty() {
                        let consts: Vec<Constant> = done
                            .iter()
                            .map(|v| match v {
                                Value::Const(k) => *k,
                                other => unreachable!("operator got non-constant {other:?}"),
                            })
                            .collect();
                        Control::Ret(Value::Const(op.apply(&consts)))
                    } else {
                        let next = rest.remove(0);
                        m.push(Frame::OpFrame {
                            op,
                            done,
                            rest,
                            env: env.clone(),
                        });
                        Control::Eval(next, env)
                    }
                }
                Some(Frame::If { then_, else_, env }) => match v {
                    Value::Const(Constant::Bool(true)) => Control::Eval(then_, env),
                    Value::Const(Constant::Bool(false)) => Control::Eval(else_, env),
                    other => unreachable!("if condition returned {other:?}"),
                },
                Some(Frame::Let { name, body, env }) => {
                    let env = env.bind(name, v);
                    Control::Eval(body, env)
                }
                Some(Frame::CoerceFrame(s)) => match m.coerce_value(v, s) {
                    Ok(v2) => Control::Ret(v2),
                    Err(p) => {
                        return Stepped::Done(MachineRun {
                            outcome: MachineOutcome::Blame(p),
                            metrics: m.metrics.clone(),
                        })
                    }
                },
            },
        };
    }
}

fn apply(m: &mut Machine<'_>, fun: Value, arg: Value) -> Result<Control, Label> {
    match fun {
        Value::Closure { param, body, env } => {
            let env = env.bind(param, arg);
            Ok(Control::Eval((*body).clone(), env))
        }
        Value::FixClosure {
            fun: f,
            param,
            body,
            env,
        } => {
            let self_val = Value::FixClosure {
                fun: f.clone(),
                param: param.clone(),
                body: body.clone(),
                env: env.clone(),
            };
            let env = env.bind(f, self_val).bind(param, arg);
            Ok(Control::Eval((*body).clone(), env))
        }
        Value::Coerced { value, coercion } => match m.arena.node(coercion) {
            SNode::Mid(INode::Ground(GNode::Fun(s, t))) => {
                // (U⟨s→t⟩) V: coerce the argument by s, push (merging!)
                // the result coercion t, apply the proxied function.
                let arg2 = m.coerce_value(arg, s)?;
                m.push_coercion(t);
                apply(m, (*value).clone(), arg2)
            }
            _ => unreachable!(
                "applied a non-function coercion {}",
                m.arena.resolve(coercion)
            ),
        },
        other => unreachable!("applied a non-function value {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_lambda_b::programs;
    use bc_translate::{term_b_to_c, term_c_to_s};

    fn to_s(t: &bc_lambda_b::Term) -> Term {
        term_c_to_s(&term_b_to_c(t))
    }

    #[test]
    fn machine_agrees_with_small_step() {
        use bc_core::eval;
        use bc_translate::bisim::observe_s;
        for (name, t) in [
            ("boundary_loop", programs::boundary_loop(6)),
            ("even_odd_mixed", programs::even_odd_mixed(5)),
            ("even_untyped", programs::even_untyped(4)),
            ("wrapped_identity", programs::wrapped_identity(4)),
        ] {
            let ts = to_s(&t);
            let small = observe_s(&eval::run(&ts, 1_000_000).unwrap().outcome);
            let machine = run(&ts, 1_000_000).outcome.to_observation();
            assert_eq!(small, machine, "{name}");
        }
    }

    #[test]
    fn tail_calls_run_in_constant_space() {
        // THE headline claim: peak frames and peak coercion size are
        // the same for 16 and 256 iterations.
        let m16 = run(&to_s(&programs::boundary_loop(16)), 10_000_000);
        let m256 = run(&to_s(&programs::boundary_loop(256)), 10_000_000);
        assert_eq!(
            m16.metrics.peak_frames, m256.metrics.peak_frames,
            "λS continuation must not grow with n"
        );
        assert_eq!(m16.metrics.peak_cast_size, m256.metrics.peak_cast_size);
        assert!(m16.metrics.peak_cast_frames <= 2);
    }

    #[test]
    fn mixed_even_odd_is_space_bounded_too() {
        let m8 = run(&to_s(&programs::even_odd_mixed(8)), 10_000_000);
        let m128 = run(&to_s(&programs::even_odd_mixed(128)), 10_000_000);
        assert_eq!(m8.metrics.peak_frames, m128.metrics.peak_frames);
    }

    #[test]
    fn blame_labels_survive_merging() {
        use bc_syntax::{Label, Type};
        let t = bc_lambda_b::Term::int(1)
            .cast(Type::INT, Label::new(0), Type::DYN)
            .cast(Type::DYN, Label::new(1), Type::BOOL);
        let out = run(&to_s(&t), 100).outcome;
        assert_eq!(out, MachineOutcome::Blame(Label::new(1)));
    }

    #[test]
    fn proxies_do_not_accumulate_on_values() {
        // Wrapping a function 2·n times merges into one proxy.
        let t = to_s(&programs::wrapped_identity(64));
        let m = run(&t, 1_000_000);
        assert!(matches!(m.outcome, MachineOutcome::Value(_)));
    }

    #[test]
    fn boundary_loop_hits_the_compose_cache() {
        // The whole point of the arena: after the first iteration,
        // every frame merge in the loop is a cache hit.
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let t = to_s(&programs::boundary_loop(512));
        let m = run_in(&t, &mut arena, &mut cache, 10_000_000);
        assert!(matches!(m.outcome, MachineOutcome::Value(_)));
        let stats = cache.stats();
        assert!(
            stats.hits > 8 * stats.misses,
            "expected overwhelmingly cache-hit merges, got {stats:?}"
        );
        // And the arena stays small even though the loop merged
        // thousands of times: bounded distinct coercions.
        assert!(arena.len() < 64, "arena grew to {}", arena.len());
    }

    #[test]
    fn rerunning_with_a_shared_arena_reuses_everything() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let t = to_s(&programs::boundary_loop(64));
        let first = run_in(&t, &mut arena, &mut cache, 10_000_000);
        let misses_after_first = cache.stats().misses;
        let second = run_in(&t, &mut arena, &mut cache, 10_000_000);
        assert_eq!(first.outcome, second.outcome);
        assert_eq!(
            cache.stats().misses,
            misses_after_first,
            "second run must be answered entirely from the cache"
        );
    }

    #[test]
    fn compiled_path_performs_zero_reinterning() {
        // THE acceptance criterion of the compiled IR: once a program
        // is compiled, boundary crossings intern nothing — 512 loop
        // iterations, zero tree interns, and (warm) zero new nodes.
        let mut ctx = bc_core::CompileCtx::new();
        let t = to_s(&programs::boundary_loop(512));
        let compiled = ctx.compile(&t);

        let first = run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, 10_000_000);
        assert!(matches!(first.outcome, MachineOutcome::Value(_)));
        assert_eq!(
            first.metrics.reuse.tree_interns, 0,
            "a compiled run must never hash-walk a coercion tree"
        );

        // Warm re-run: no interning, no new nodes, no structural
        // composition — pure cache hits.
        let nodes_after_first = ctx.arena.len();
        let second = run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, 10_000_000);
        assert_eq!(first.outcome, second.outcome);
        assert_eq!(second.metrics.reuse.tree_interns, 0);
        assert_eq!(second.metrics.reuse.node_misses, 0);
        assert_eq!(second.metrics.reuse.compose_misses, 0);
        assert!(second.metrics.reuse.compose_hits > 0);
        assert_eq!(ctx.arena.len(), nodes_after_first);

        // Contrast: the tree entry point pays interning for the same
        // program (the hash walks the compiled path eliminated).
        let tree = run_in(&t, &mut ctx.arena, &mut ctx.cache, 10_000_000);
        assert_eq!(tree.outcome, second.outcome);
        assert!(tree.metrics.reuse.tree_interns > 0);
    }

    #[test]
    fn compiled_and_tree_paths_agree_on_metrics() {
        // Space metrics are a property of the evaluation, not of the
        // term representation.
        let t = to_s(&programs::even_odd_mixed(32));
        let tree = run(&t, 10_000_000);
        let mut ctx = bc_core::CompileCtx::new();
        let compiled = ctx.compile(&t);
        let fast = run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, 10_000_000);
        assert_eq!(tree.outcome, fast.outcome);
        assert_eq!(tree.metrics.peak_frames, fast.metrics.peak_frames);
        assert_eq!(tree.metrics.peak_cast_frames, fast.metrics.peak_cast_frames);
        assert_eq!(tree.metrics.peak_cast_size, fast.metrics.peak_cast_size);
        assert_eq!(tree.metrics.steps, fast.metrics.steps);
    }
}
