//! A CEK machine for λC.
//!
//! Coercions become continuation frames, pushed and never merged — the
//! same leak as the λB machine, expressed in coercion syntax. Compare
//! with [`crate::cek_s`], which differs *only* in merging adjacent
//! coercion frames.

use std::rc::Rc;

use bc_lambda_c::coercion::Coercion;
use bc_lambda_c::term::Term;
use bc_syntax::{Constant, Label, Name, Op};
use bc_translate::bisim::Observation;

use crate::metrics::{MachineOutcome, MachineRun, Metrics, SliceResult};

/// Run-time values of the λC machine.
#[derive(Debug, Clone)]
pub enum Value {
    /// A constant.
    Const(Constant),
    /// A closure.
    Closure {
        /// Parameter name.
        param: Name,
        /// Function body.
        body: Rc<Term>,
        /// Captured environment.
        env: Env,
    },
    /// A recursive closure.
    FixClosure {
        /// Function name.
        fun: Name,
        /// Parameter name.
        param: Name,
        /// Function body.
        body: Rc<Term>,
        /// Captured environment.
        env: Env,
    },
    /// A value under a function coercion or injection.
    Coerced {
        /// The underlying value.
        value: Rc<Value>,
        /// The wrapping coercion (`c → d` or `G!`).
        coercion: Coercion,
    },
}

impl Value {
    /// The calculus-agnostic observation of this value.
    pub fn observe(&self) -> Observation {
        match self {
            Value::Const(k) => Observation::Constant(*k),
            Value::Closure { .. } | Value::FixClosure { .. } => Observation::Function,
            Value::Coerced { value, coercion } => match coercion {
                Coercion::Fun(_, _) => Observation::Function,
                Coercion::Inj(g) => Observation::Injected(*g, Box::new(value.observe())),
                other => unreachable!("coerced value with non-value coercion {other}"),
            },
        }
    }
}

/// A persistent environment.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Name,
    value: Value,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env(None)
    }

    /// Extends the environment with a binding.
    #[must_use]
    pub fn bind(&self, name: Name, value: Value) -> Env {
        Env(Some(Rc::new(EnvNode {
            name,
            value,
            rest: self.clone(),
        })))
    }

    fn lookup(&self, name: &Name) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

// Variant names deliberately carry the -Frame suffix: "cast frame" /
// "coercion frame" is the paper's terminology for what leaks in
// λB/λC and merges in λS.
#[allow(clippy::enum_variant_names)]
enum Frame {
    AppArg {
        arg: Term,
        env: Env,
    },
    AppCall {
        fun: Value,
    },
    OpFrame {
        op: Op,
        done: Vec<Value>,
        rest: Vec<Term>,
        env: Env,
    },
    If {
        then_: Term,
        else_: Term,
        env: Env,
    },
    Let {
        name: Name,
        body: Term,
        env: Env,
    },
    CoerceFrame(Coercion),
}

enum Control {
    Eval(Term, Env),
    Ret(Value),
}

struct Machine {
    stack: Vec<Frame>,
    metrics: Metrics,
    coercion_frames: usize,
    coercion_size: usize,
}

impl Machine {
    fn push(&mut self, f: Frame) {
        if let Frame::CoerceFrame(c) = &f {
            self.coercion_frames += 1;
            self.coercion_size += c.size();
        }
        self.stack.push(f);
        self.metrics
            .observe(self.stack.len(), self.coercion_frames, self.coercion_size);
    }

    fn pop(&mut self) -> Option<Frame> {
        let f = self.stack.pop();
        if let Some(Frame::CoerceFrame(c)) = &f {
            self.coercion_frames -= 1;
            self.coercion_size -= c.size();
        }
        f
    }
}

/// Applies a coercion to a value immediately.
fn coerce_value(v: Value, c: &Coercion) -> Result<Value, Label> {
    match c {
        Coercion::Id(_) => Ok(v),
        Coercion::Seq(c1, c2) => coerce_value(coerce_value(v, c1)?, c2),
        Coercion::Inj(_) | Coercion::Fun(_, _) => Ok(Value::Coerced {
            value: Rc::new(v),
            coercion: c.clone(),
        }),
        Coercion::Proj(h, p) => match v {
            Value::Coerced {
                value,
                coercion: Coercion::Inj(g),
            } => {
                if g == *h {
                    Ok((*value).clone())
                } else {
                    Err(*p)
                }
            }
            other => unreachable!("projected a non-injection {other:?}"),
        },
        Coercion::Fail(_, p, _) => Err(*p),
    }
}

/// A preempted λC machine run, parked between fuel slices.
///
/// Same contract as [`crate::cek_b::Paused`]: resuming is
/// observationally identical to never having parked, and the state is
/// deliberately worker-local (`Rc`-shared values, not `Send`).
pub struct Paused {
    machine: Machine,
    control: Control,
    fuel: u64,
}

impl Paused {
    /// Machine transitions taken so far, across all slices.
    pub fn steps(&self) -> u64 {
        self.machine.metrics.steps
    }
}

/// Begins a resumable run of a closed, well-typed λC term. No steps
/// are taken; drive the machine with [`resume`].
pub fn start(term: &Term, fuel: u64) -> Paused {
    Paused {
        machine: Machine {
            stack: Vec::new(),
            metrics: Metrics::default(),
            coercion_frames: 0,
            coercion_size: 0,
        },
        control: Control::Eval(term.clone(), Env::new()),
        fuel,
    }
}

/// Runs a parked machine for at most `slice` further transitions.
/// Fuel is checked before the slice budget, so `resume(start(t, f),
/// f)` is exactly [`run`]`(t, f)`.
///
/// # Panics
///
/// Panics on open or ill-typed input.
pub fn resume(paused: Paused, slice: u64) -> SliceResult<Paused> {
    let Paused {
        machine: mut m,
        mut control,
        fuel,
    } = paused;
    let until = m.metrics.steps.saturating_add(slice);
    loop {
        if m.metrics.steps >= fuel {
            return SliceResult::Done(MachineRun {
                outcome: MachineOutcome::Timeout,
                metrics: m.metrics,
            });
        }
        if m.metrics.steps >= until {
            return SliceResult::Parked(Paused {
                machine: m,
                control,
                fuel,
            });
        }
        m.metrics.steps += 1;
        control = match control {
            Control::Eval(t, env) => match t {
                Term::Const(k) => Control::Ret(Value::Const(k)),
                Term::Var(x) => Control::Ret(
                    env.lookup(&x)
                        .unwrap_or_else(|| panic!("unbound variable `{x}`"))
                        .clone(),
                ),
                Term::Lam(param, _, body) => Control::Ret(Value::Closure { param, body, env }),
                Term::Fix(fun, param, _, _, body) => Control::Ret(Value::FixClosure {
                    fun,
                    param,
                    body,
                    env,
                }),
                Term::App(l, r) => {
                    m.push(Frame::AppArg {
                        arg: (*r).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*l).clone(), env)
                }
                Term::Op(op, mut args) => {
                    let rest = args.split_off(1);
                    let first = args.pop().expect("operators have at least one argument");
                    m.push(Frame::OpFrame {
                        op,
                        done: Vec::new(),
                        rest,
                        env: env.clone(),
                    });
                    Control::Eval(first, env)
                }
                Term::Coerce(inner, c) => {
                    m.push(Frame::CoerceFrame(c));
                    Control::Eval((*inner).clone(), env)
                }
                Term::Blame(p, _) => {
                    return SliceResult::Done(MachineRun {
                        outcome: MachineOutcome::Blame(p),
                        metrics: m.metrics,
                    })
                }
                Term::If(c, t2, e) => {
                    m.push(Frame::If {
                        then_: (*t2).clone(),
                        else_: (*e).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*c).clone(), env)
                }
                Term::Let(x, bound, body) => {
                    m.push(Frame::Let {
                        name: x,
                        body: (*body).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*bound).clone(), env)
                }
            },
            Control::Ret(v) => match m.pop() {
                None => {
                    return SliceResult::Done(MachineRun {
                        outcome: MachineOutcome::Value(v.observe()),
                        metrics: m.metrics,
                    })
                }
                Some(Frame::AppArg { arg, env }) => {
                    m.push(Frame::AppCall { fun: v });
                    Control::Eval(arg, env)
                }
                Some(Frame::AppCall { fun }) => match apply(&mut m, fun, v) {
                    Ok(c) => c,
                    Err(p) => {
                        return SliceResult::Done(MachineRun {
                            outcome: MachineOutcome::Blame(p),
                            metrics: m.metrics,
                        })
                    }
                },
                Some(Frame::OpFrame {
                    op,
                    mut done,
                    mut rest,
                    env,
                }) => {
                    done.push(v);
                    if rest.is_empty() {
                        let consts: Vec<Constant> = done
                            .iter()
                            .map(|v| match v {
                                Value::Const(k) => *k,
                                other => unreachable!("operator got non-constant {other:?}"),
                            })
                            .collect();
                        Control::Ret(Value::Const(op.apply(&consts)))
                    } else {
                        let next = rest.remove(0);
                        m.push(Frame::OpFrame {
                            op,
                            done,
                            rest,
                            env: env.clone(),
                        });
                        Control::Eval(next, env)
                    }
                }
                Some(Frame::If { then_, else_, env }) => match v {
                    Value::Const(Constant::Bool(true)) => Control::Eval(then_, env),
                    Value::Const(Constant::Bool(false)) => Control::Eval(else_, env),
                    other => unreachable!("if condition returned {other:?}"),
                },
                Some(Frame::Let { name, body, env }) => {
                    let env = env.bind(name, v);
                    Control::Eval(body, env)
                }
                Some(Frame::CoerceFrame(c)) => match coerce_value(v, &c) {
                    Ok(v2) => Control::Ret(v2),
                    Err(p) => {
                        return SliceResult::Done(MachineRun {
                            outcome: MachineOutcome::Blame(p),
                            metrics: m.metrics,
                        })
                    }
                },
            },
        };
    }
}

/// Runs a closed, well-typed λC term on the CEK machine in one slice.
///
/// # Panics
///
/// Panics on open or ill-typed input.
pub fn run(term: &Term, fuel: u64) -> MachineRun {
    match resume(start(term, fuel), fuel) {
        SliceResult::Done(r) => r,
        SliceResult::Parked(_) => unreachable!("a slice of the whole fuel cannot park"),
    }
}

fn apply(m: &mut Machine, fun: Value, arg: Value) -> Result<Control, Label> {
    match fun {
        Value::Closure { param, body, env } => {
            let env = env.bind(param, arg);
            Ok(Control::Eval((*body).clone(), env))
        }
        Value::FixClosure {
            fun: f,
            param,
            body,
            env,
        } => {
            let self_val = Value::FixClosure {
                fun: f.clone(),
                param: param.clone(),
                body: body.clone(),
                env: env.clone(),
            };
            let env = env.bind(f, self_val).bind(param, arg);
            Ok(Control::Eval((*body).clone(), env))
        }
        Value::Coerced {
            value,
            coercion: Coercion::Fun(c, d),
        } => {
            let arg2 = coerce_value(arg, &c)?;
            m.push(Frame::CoerceFrame((*d).clone()));
            apply(m, (*value).clone(), arg2)
        }
        other => unreachable!("applied a non-function value {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_lambda_b::programs;
    use bc_translate::term_b_to_c;

    #[test]
    fn machine_agrees_with_small_step() {
        use bc_lambda_c::eval;
        use bc_translate::bisim::observe_c;
        for (name, t) in [
            ("boundary_loop", programs::boundary_loop(6)),
            ("even_odd_mixed", programs::even_odd_mixed(5)),
            ("even_untyped", programs::even_untyped(4)),
        ] {
            let tc = term_b_to_c(&t);
            let small = observe_c(&eval::run(&tc, 1_000_000).unwrap().outcome);
            let machine = run(&tc, 1_000_000).outcome.to_observation();
            assert_eq!(small, machine, "{name}");
        }
    }

    #[test]
    fn the_leak_persists_in_coercion_form() {
        let m8 = run(&term_b_to_c(&programs::boundary_loop(8)), 1_000_000);
        let m64 = run(&term_b_to_c(&programs::boundary_loop(64)), 1_000_000);
        assert!(
            m64.metrics.peak_cast_frames >= m8.metrics.peak_cast_frames + 56,
            "expected linear frame growth: {} vs {}",
            m8.metrics.peak_cast_frames,
            m64.metrics.peak_cast_frames
        );
    }
}
