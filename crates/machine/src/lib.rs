//! CEK-style abstract machines for λB, λC, and λS with space
//! instrumentation.
//!
//! The paper's introduction recounts the space-leak story: a naive
//! implementation of casts breaks tail calls, because pending
//! result-casts pile up in the continuation. These machines make the
//! story measurable:
//!
//! * [`cek_b`] — a machine for λB. Cast frames are pushed and never
//!   merged; mutually recursive typed/untyped tail calls grow the
//!   continuation linearly.
//! * [`cek_c`] — the same for λC with coercion frames; same leak.
//! * [`cek_s`] — the machine for λS (in the style of Siek–Garcia
//!   2012): pushing a coercion frame onto a continuation whose top is
//!   already a coercion frame *composes* the two with `s # t` instead.
//!   Together with Proposition 14 (composition preserves height) this
//!   bounds the continuation and restores proper tail calls.
//!
//! Every machine reports [`metrics::Metrics`]: peak continuation
//! depth, peak number of cast/coercion frames, and peak total size of
//! coercions held by the continuation. The `space` benchmark and
//! EXPERIMENTS.md table E15 are generated from these numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cek_b;
pub mod cek_c;
pub mod cek_s;
pub mod metrics;

pub use metrics::{MachineOutcome, Metrics, ReuseStats};
