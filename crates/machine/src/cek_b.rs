//! A CEK machine for λB.
//!
//! Casts become continuation frames; a pending result cast is pushed
//! for every function-cast application and *never merged*, so
//! boundary-crossing tail calls grow the continuation — the machine
//! reproduces the space leak of §1 faithfully (see the metrics).

use std::rc::Rc;

use bc_lambda_b::term::{Cast, Term};
use bc_syntax::{Constant, Label, Name, Op, Type};
use bc_translate::bisim::Observation;

use crate::metrics::{MachineOutcome, MachineRun, Metrics, SliceResult};

/// Run-time values of the λB machine.
#[derive(Debug, Clone)]
pub enum Value {
    /// A constant.
    Const(Constant),
    /// A closure.
    Closure {
        /// Parameter name.
        param: Name,
        /// Function body.
        body: Rc<Term>,
        /// Captured environment.
        env: Env,
    },
    /// A recursive closure (`fix`).
    FixClosure {
        /// Function name (bound to the closure itself on application).
        fun: Name,
        /// Parameter name.
        param: Name,
        /// Function body.
        body: Rc<Term>,
        /// Captured environment.
        env: Env,
    },
    /// A value wrapped in a cast: either a function proxy
    /// (`A→B ⇒p A'→B'`) or an injection (`G ⇒p ?`).
    Wrapped {
        /// The underlying value.
        value: Rc<Value>,
        /// The wrapping cast.
        cast: Cast,
    },
}

impl Value {
    /// The calculus-agnostic observation of this value.
    pub fn observe(&self) -> Observation {
        match self {
            Value::Const(k) => Observation::Constant(*k),
            Value::Closure { .. } | Value::FixClosure { .. } => Observation::Function,
            Value::Wrapped { value, cast } => match (&cast.source, &cast.target) {
                (Type::Fun(_, _), Type::Fun(_, _)) => Observation::Function,
                (src, Type::Dyn) => Observation::Injected(
                    src.as_ground().expect("injection from ground"),
                    Box::new(value.observe()),
                ),
                _ => unreachable!("wrapped value with a non-value cast"),
            },
        }
    }
}

/// A persistent environment (linked list; cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Name,
    value: Value,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env(None)
    }

    /// Extends the environment with a binding.
    #[must_use]
    pub fn bind(&self, name: Name, value: Value) -> Env {
        Env(Some(Rc::new(EnvNode {
            name,
            value,
            rest: self.clone(),
        })))
    }

    fn lookup(&self, name: &Name) -> Option<&Value> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = &node.rest;
        }
        None
    }
}

// Variant names deliberately carry the -Frame suffix: "cast frame" /
// "coercion frame" is the paper's terminology for what leaks in
// λB/λC and merges in λS.
#[allow(clippy::enum_variant_names)]
enum Frame {
    AppArg {
        arg: Term,
        env: Env,
    },
    AppCall {
        fun: Value,
    },
    OpFrame {
        op: Op,
        done: Vec<Value>,
        rest: Vec<Term>,
        env: Env,
    },
    If {
        then_: Term,
        else_: Term,
        env: Env,
    },
    Let {
        name: Name,
        body: Term,
        env: Env,
    },
    CastFrame(Cast),
}

enum Control {
    Eval(Term, Env),
    Ret(Value),
}

/// The λB CEK machine.
struct Machine {
    stack: Vec<Frame>,
    metrics: Metrics,
    cast_frames: usize,
    cast_size: usize,
}

fn cast_size(c: &Cast) -> usize {
    c.source.size() + c.target.size() + 1
}

impl Machine {
    fn push(&mut self, f: Frame) {
        if let Frame::CastFrame(c) = &f {
            self.cast_frames += 1;
            self.cast_size += cast_size(c);
        }
        self.stack.push(f);
        self.metrics
            .observe(self.stack.len(), self.cast_frames, self.cast_size);
    }

    fn pop(&mut self) -> Option<Frame> {
        let f = self.stack.pop();
        if let Some(Frame::CastFrame(c)) = &f {
            self.cast_frames -= 1;
            self.cast_size -= cast_size(c);
        }
        f
    }
}

/// Applies a cast to a value immediately (values cross casts without
/// machine steps; function casts and injections wrap).
fn cast_value(v: Value, cast: &Cast) -> Result<Value, Label> {
    match (&cast.source, &cast.target) {
        (Type::Base(_), Type::Base(_)) | (Type::Dyn, Type::Dyn) => Ok(v),
        (Type::Fun(_, _), Type::Fun(_, _)) => Ok(Value::Wrapped {
            value: Rc::new(v),
            cast: cast.clone(),
        }),
        (a, Type::Dyn) => {
            if a.is_ground() {
                Ok(Value::Wrapped {
                    value: Rc::new(v),
                    cast: cast.clone(),
                })
            } else {
                let g = a.ground_of().expect("not ? here").ty();
                let first = cast_value(v, &Cast::new(a.clone(), cast.label, g.clone()))?;
                cast_value(first, &Cast::new(g, cast.label, Type::Dyn))
            }
        }
        (Type::Dyn, b) => match b.as_ground() {
            Some(h) => match v {
                Value::Wrapped { value, cast: inner } => {
                    let g = inner.source.as_ground().expect("injection from ground");
                    if g == h {
                        Ok((*value).clone())
                    } else {
                        Err(cast.label)
                    }
                }
                other => unreachable!("value of type ? is not an injection: {other:?}"),
            },
            None => {
                let g = b.ground_of().expect("not ? here").ty();
                let first = cast_value(v, &Cast::new(Type::Dyn, cast.label, g.clone()))?;
                cast_value(first, &Cast::new(g, cast.label, b.clone()))
            }
        },
        (a, b) => unreachable!("ill-typed cast {a} ⇒ {b} reached the machine"),
    }
}

/// A preempted λB machine run, parked between fuel slices.
///
/// Holds the complete machine state — continuation stack, control,
/// and metrics — plus the run's total fuel, so [`resume`] continues
/// exactly where the last slice stopped. Slicing is invisible to the
/// semantics: the fuel check (`steps >= fuel`) happens before every
/// transition whether sliced or not, so steps, space peaks, and the
/// final outcome are identical to an unsliced [`run`].
///
/// Values and environments are `Rc`-shared, so a parked run is
/// deliberately **not** `Send`: it stays on the worker thread that
/// started it. (An `Arc` spine was measured ~30% slower end to end
/// in this machine family, so cross-thread parking is not worth the
/// price; the scheduler parks per worker instead.)
pub struct Paused {
    machine: Machine,
    control: Control,
    fuel: u64,
}

impl Paused {
    /// Machine transitions taken so far, across all slices.
    pub fn steps(&self) -> u64 {
        self.machine.metrics.steps
    }
}

/// Begins a resumable run of a closed, well-typed λB term. No steps
/// are taken; drive the machine with [`resume`].
pub fn start(term: &Term, fuel: u64) -> Paused {
    Paused {
        machine: Machine {
            stack: Vec::new(),
            metrics: Metrics::default(),
            cast_frames: 0,
            cast_size: 0,
        },
        control: Control::Eval(term.clone(), Env::new()),
        fuel,
    }
}

/// Runs a parked machine for at most `slice` further transitions.
///
/// Fuel exhaustion is checked before the slice budget (fuel and
/// slices count the same unit: machine transitions), so a slice at
/// least as large as the remaining fuel can never park —
/// `resume(start(t, fuel), fuel)` is exactly [`run`]`(t, fuel)`.
///
/// # Panics
///
/// Panics on open or ill-typed input (type-check first).
pub fn resume(paused: Paused, slice: u64) -> SliceResult<Paused> {
    let Paused {
        machine: mut m,
        mut control,
        fuel,
    } = paused;
    let until = m.metrics.steps.saturating_add(slice);
    loop {
        if m.metrics.steps >= fuel {
            return SliceResult::Done(MachineRun {
                outcome: MachineOutcome::Timeout,
                metrics: m.metrics,
            });
        }
        if m.metrics.steps >= until {
            return SliceResult::Parked(Paused {
                machine: m,
                control,
                fuel,
            });
        }
        m.metrics.steps += 1;
        control = match control {
            Control::Eval(t, env) => match t {
                Term::Const(k) => Control::Ret(Value::Const(k)),
                Term::Var(x) => Control::Ret(
                    env.lookup(&x)
                        .unwrap_or_else(|| panic!("unbound variable `{x}`"))
                        .clone(),
                ),
                Term::Lam(param, _, body) => Control::Ret(Value::Closure { param, body, env }),
                Term::Fix(fun, param, _, _, body) => Control::Ret(Value::FixClosure {
                    fun,
                    param,
                    body,
                    env,
                }),
                Term::App(l, r) => {
                    m.push(Frame::AppArg {
                        arg: (*r).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*l).clone(), env)
                }
                Term::Op(op, mut args) => {
                    let rest = args.split_off(1);
                    let first = args.pop().expect("operators have at least one argument");
                    m.push(Frame::OpFrame {
                        op,
                        done: Vec::new(),
                        rest,
                        env: env.clone(),
                    });
                    Control::Eval(first, env)
                }
                Term::Cast(inner, c) => {
                    m.push(Frame::CastFrame(c));
                    Control::Eval((*inner).clone(), env)
                }
                Term::Blame(p, _) => {
                    return SliceResult::Done(MachineRun {
                        outcome: MachineOutcome::Blame(p),
                        metrics: m.metrics,
                    })
                }
                Term::If(c, t2, e) => {
                    m.push(Frame::If {
                        then_: (*t2).clone(),
                        else_: (*e).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*c).clone(), env)
                }
                Term::Let(x, bound, body) => {
                    m.push(Frame::Let {
                        name: x,
                        body: (*body).clone(),
                        env: env.clone(),
                    });
                    Control::Eval((*bound).clone(), env)
                }
            },
            Control::Ret(v) => match m.pop() {
                None => {
                    return SliceResult::Done(MachineRun {
                        outcome: MachineOutcome::Value(v.observe()),
                        metrics: m.metrics,
                    })
                }
                Some(Frame::AppArg { arg, env }) => {
                    m.push(Frame::AppCall { fun: v });
                    Control::Eval(arg, env)
                }
                Some(Frame::AppCall { fun }) => match apply(&mut m, fun, v) {
                    Ok(c) => c,
                    Err(p) => {
                        return SliceResult::Done(MachineRun {
                            outcome: MachineOutcome::Blame(p),
                            metrics: m.metrics,
                        })
                    }
                },
                Some(Frame::OpFrame {
                    op,
                    mut done,
                    mut rest,
                    env,
                }) => {
                    done.push(v);
                    if rest.is_empty() {
                        let consts: Vec<Constant> = done
                            .iter()
                            .map(|v| match v {
                                Value::Const(k) => *k,
                                other => unreachable!("operator got non-constant {other:?}"),
                            })
                            .collect();
                        Control::Ret(Value::Const(op.apply(&consts)))
                    } else {
                        let next = rest.remove(0);
                        m.push(Frame::OpFrame {
                            op,
                            done,
                            rest,
                            env: env.clone(),
                        });
                        Control::Eval(next, env)
                    }
                }
                Some(Frame::If { then_, else_, env }) => match v {
                    Value::Const(Constant::Bool(true)) => Control::Eval(then_, env),
                    Value::Const(Constant::Bool(false)) => Control::Eval(else_, env),
                    other => unreachable!("if condition returned {other:?}"),
                },
                Some(Frame::Let { name, body, env }) => {
                    let env = env.bind(name, v);
                    Control::Eval(body, env)
                }
                Some(Frame::CastFrame(c)) => match cast_value(v, &c) {
                    Ok(v2) => Control::Ret(v2),
                    Err(p) => {
                        return SliceResult::Done(MachineRun {
                            outcome: MachineOutcome::Blame(p),
                            metrics: m.metrics,
                        })
                    }
                },
            },
        };
    }
}

/// Runs a closed, well-typed λB term on the CEK machine in one slice.
///
/// # Panics
///
/// Panics on open or ill-typed input (type-check first).
pub fn run(term: &Term, fuel: u64) -> MachineRun {
    match resume(start(term, fuel), fuel) {
        SliceResult::Done(r) => r,
        SliceResult::Parked(_) => unreachable!("a slice of the whole fuel cannot park"),
    }
}

/// Applies `fun` to `arg`, unwrapping function-cast proxies.
fn apply(m: &mut Machine, fun: Value, arg: Value) -> Result<Control, Label> {
    match fun {
        Value::Closure { param, body, env } => {
            let env = env.bind(param, arg);
            Ok(Control::Eval((*body).clone(), env))
        }
        Value::FixClosure {
            fun: f,
            param,
            body,
            env,
        } => {
            let self_val = Value::FixClosure {
                fun: f.clone(),
                param: param.clone(),
                body: body.clone(),
                env: env.clone(),
            };
            let env = env.bind(f, self_val).bind(param, arg);
            Ok(Control::Eval((*body).clone(), env))
        }
        Value::Wrapped { value, cast } => match (&cast.source, &cast.target) {
            (Type::Fun(a, b), Type::Fun(a2, b2)) => {
                // (V : A→B ⇒p A'→B') W: cast the argument with p̄,
                // push the (unmerged!) result cast, apply the proxy.
                let arg2 = cast_value(
                    arg,
                    &Cast::new((**a2).clone(), cast.label.complement(), (**a).clone()),
                )?;
                m.push(Frame::CastFrame(Cast::new(
                    (**b).clone(),
                    cast.label,
                    (**b2).clone(),
                )));
                apply(m, (*value).clone(), arg2)
            }
            _ => unreachable!("applied a non-function wrapper"),
        },
        other => unreachable!("applied a non-function value {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_lambda_b::programs;

    #[test]
    fn machine_agrees_with_small_step() {
        use bc_lambda_b::eval;
        use bc_translate::bisim::observe_b;
        for (name, t) in [
            ("boundary_loop", programs::boundary_loop(6)),
            ("even_odd_mixed", programs::even_odd_mixed(5)),
            ("even_typed", programs::even_typed(8)),
            ("even_untyped", programs::even_untyped(4)),
            ("wrapped_identity", programs::wrapped_identity(4)),
        ] {
            let small = observe_b(&eval::run(&t, 1_000_000).unwrap().outcome);
            let machine = run(&t, 1_000_000).outcome.to_observation();
            assert_eq!(small, machine, "{name}");
        }
    }

    #[test]
    fn blame_agrees_with_small_step() {
        use bc_lambda_b::eval;
        use bc_syntax::Label;
        let t = Term::int(1).cast(Type::INT, Label::new(0), Type::DYN).cast(
            Type::DYN,
            Label::new(1),
            Type::BOOL,
        );
        let small = eval::run(&t, 100).unwrap().outcome;
        let machine = run(&t, 100).outcome;
        assert_eq!(machine, MachineOutcome::Blame(Label::new(1)));
        assert!(matches!(small, eval::Outcome::Blame(l) if l == Label::new(1)));
    }

    #[test]
    fn the_leak_is_real() {
        // Peak cast frames grow linearly with the iteration count.
        let m8 = run(&programs::boundary_loop(8), 1_000_000);
        let m64 = run(&programs::boundary_loop(64), 1_000_000);
        assert!(
            m64.metrics.peak_cast_frames >= m8.metrics.peak_cast_frames + 56,
            "expected linear frame growth: {} vs {}",
            m8.metrics.peak_cast_frames,
            m64.metrics.peak_cast_frames
        );
    }

    #[test]
    fn typed_code_has_no_cast_frames() {
        let m = run(&programs::even_typed(64), 1_000_000);
        assert_eq!(m.metrics.peak_cast_frames, 0);
        // Proper tail calls: continuation depth is constant-bounded.
        let m2 = run(&programs::even_typed(128), 1_000_000);
        assert_eq!(m.metrics.peak_frames, m2.metrics.peak_frames);
    }
}
