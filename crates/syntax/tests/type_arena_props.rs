//! Property tests for the hash-consing [`TypeArena`]: interning is
//! canonical and invertible, the precomputed per-node facts match the
//! tree queries, and every memoized relational query agrees with its
//! tree specification in `bc_syntax::types` / `bc_syntax::subtype` —
//! on random types, in random query orders, warm or cold.

use bc_syntax::{naive_subtype, neg_subtype, pos_subtype, subtype, Type, TypeArena};
use proptest::prelude::*;

/// A random type of bounded height (same strategy as
/// `subtype_props.rs`).
fn ty(depth: u32) -> BoxedStrategy<Type> {
    let leaf = prop_oneof![Just(Type::INT), Just(Type::BOOL), Just(Type::DYN)];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Type::fun(a, b))
    })
    .boxed()
}

/// A random *compatible* pair `A ∼ B`, by the Figure-1 rules: equal
/// bases, either side `?`, or function types with compatible
/// components. Exercises the `true` branches densely (arbitrary pairs
/// are mostly incompatible).
fn compatible_pair(depth: u32) -> BoxedStrategy<(Type, Type)> {
    let leaf = prop_oneof![
        Just((Type::INT, Type::INT)),
        Just((Type::BOOL, Type::BOOL)),
        ty(1).prop_map(|t| (t, Type::DYN)),
        ty(1).prop_map(|t| (Type::DYN, t)),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (inner.clone(), inner)
            .prop_map(|((a1, a2), (b1, b2))| (Type::fun(a1, b1), Type::fun(a2, b2)))
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Invariants 1 and 2: `resolve ∘ intern = id`, and interning the
    /// same tree twice yields the same id.
    #[test]
    fn intern_resolve_is_the_identity(t in ty(3)) {
        let mut arena = TypeArena::new();
        let id = arena.intern(&t);
        prop_assert_eq!(arena.resolve(id), t.clone(), "resolve ∘ intern on {}", t);
        prop_assert_eq!(arena.intern(&t), id, "re-interning {} changed its id", t);
    }

    /// Canonicity across distinct trees: ids are equal iff the trees
    /// are structurally equal.
    #[test]
    fn ids_are_canonical(a in ty(3), b in ty(3)) {
        let mut arena = TypeArena::new();
        let (ia, ib) = (arena.intern(&a), arena.intern(&b));
        prop_assert_eq!(ia == ib, a == b, "{} vs {}", a, b);
    }

    /// Precomputed per-node facts equal the tree queries.
    #[test]
    fn metadata_matches_tree_queries(t in ty(3)) {
        let mut arena = TypeArena::new();
        let id = arena.intern(&t);
        prop_assert_eq!(arena.height(id), t.height());
        prop_assert_eq!(arena.size(id), t.size());
        prop_assert_eq!(arena.ground_of(id), t.ground_of());
        prop_assert_eq!(arena.as_ground(id), t.as_ground());
        prop_assert_eq!(arena.is_ground(id), t.is_ground());
        prop_assert_eq!(arena.is_dyn(id), t.is_dyn());
    }

    /// Generated compatible pairs really are compatible, and the
    /// memoized query sees that (dense positives).
    #[test]
    fn compatible_pairs_are_compatible(pair in compatible_pair(3)) {
        let (a, b) = pair;
        prop_assert!(a.compatible(&b), "{} ∼ {}", a, b);
        let mut arena = TypeArena::new();
        let (ia, ib) = (arena.intern(&a), arena.intern(&b));
        prop_assert!(arena.compatible(ia, ib), "{} ∼ {}", a, b);
    }

    /// Invariant 4 for `A ∼ B`: the memoized query equals
    /// [`Type::compatible`], cold, warm, and in either order
    /// (compatibility is symmetric).
    #[test]
    fn compatible_agrees_with_tree_implementation(a in ty(3), b in ty(3)) {
        let mut arena = TypeArena::new();
        let (ia, ib) = (arena.intern(&a), arena.intern(&b));
        let expected = a.compatible(&b);
        prop_assert_eq!(arena.compatible(ia, ib), expected, "{} ∼? {}", a, b);
        prop_assert_eq!(arena.compatible(ia, ib), expected, "memoized {} ∼? {}", a, b);
        prop_assert_eq!(arena.compatible(ib, ia), expected, "symmetric {} ∼? {}", b, a);
    }

    /// Invariant 4 for the four subtyping relations of Figure 2: the
    /// memoized queries equal the tree implementations, cold and warm,
    /// in both directions.
    #[test]
    fn subtyping_agrees_with_tree_implementation(a in ty(3), b in ty(3)) {
        let mut arena = TypeArena::new();
        let (ia, ib) = (arena.intern(&a), arena.intern(&b));
        for _ in 0..2 {
            prop_assert_eq!(arena.subtype(ia, ib), subtype(&a, &b), "{} <: {}", a, b);
            prop_assert_eq!(arena.pos_subtype(ia, ib), pos_subtype(&a, &b), "{} <:+ {}", a, b);
            prop_assert_eq!(arena.neg_subtype(ia, ib), neg_subtype(&a, &b), "{} <:- {}", a, b);
            prop_assert_eq!(arena.naive_subtype(ia, ib), naive_subtype(&a, &b), "{} <:n {}", a, b);
            prop_assert_eq!(arena.subtype(ib, ia), subtype(&b, &a), "{} <: {}", b, a);
        }
    }

    /// Subtyping on compatible pairs (the pairs real programs ask
    /// about): memoized ≡ tree on the dense-positive distribution too.
    #[test]
    fn subtyping_agrees_on_compatible_pairs(pair in compatible_pair(3)) {
        let (a, b) = pair;
        let mut arena = TypeArena::new();
        let (ia, ib) = (arena.intern(&a), arena.intern(&b));
        prop_assert_eq!(arena.subtype(ia, ib), subtype(&a, &b), "{} <: {}", a, b);
        prop_assert_eq!(arena.pos_subtype(ia, ib), pos_subtype(&a, &b), "{} <:+ {}", a, b);
        prop_assert_eq!(arena.neg_subtype(ia, ib), neg_subtype(&a, &b), "{} <:- {}", a, b);
        prop_assert_eq!(arena.naive_subtype(ia, ib), naive_subtype(&a, &b), "{} <:n {}", a, b);
    }

    /// A warm arena answers like a cold one: sharing an arena (and its
    /// memo tables) across many unrelated queries never changes a
    /// verdict — and repeating a batch adds no misses.
    #[test]
    fn warm_arena_agrees_with_cold_arena(
        p1 in (ty(2), ty(2)),
        p2 in (ty(2), ty(2)),
        p3 in (ty(2), ty(2)),
        p4 in compatible_pair(2),
    ) {
        let pairs = [p1, p2, p3, p4];
        let mut warm = TypeArena::new();
        for (a, b) in &pairs {
            let (ia, ib) = (warm.intern(a), warm.intern(b));
            let mut cold = TypeArena::new();
            let (ca, cb) = (cold.intern(a), cold.intern(b));
            prop_assert_eq!(warm.compatible(ia, ib), cold.compatible(ca, cb));
            prop_assert_eq!(warm.subtype(ia, ib), cold.subtype(ca, cb));
            prop_assert_eq!(warm.neg_subtype(ia, ib), cold.neg_subtype(ca, cb));
        }
        let misses = warm.query_stats().misses;
        for (a, b) in &pairs {
            let (ia, ib) = (warm.intern(a), warm.intern(b));
            warm.compatible(ia, ib);
            warm.subtype(ia, ib);
            warm.neg_subtype(ia, ib);
        }
        prop_assert_eq!(warm.query_stats().misses, misses, "repeat batch must be all hits");
    }
}
