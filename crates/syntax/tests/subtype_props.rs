//! Property tests for the subtyping lattice and type meets over
//! randomly generated (deep) types — the randomised complement of the
//! exhaustive small-universe tests in `bc_syntax::subtype` (E1, E4).

use bc_syntax::pointed::{meet_pointed, pointed_naive_subtype, PointedType};
use bc_syntax::{meet, naive_subtype, neg_subtype, pos_subtype, subtype, Ground, Type};
use proptest::prelude::*;

/// A random type of bounded height (proptest-native strategy, giving
/// shrinking on failure).
fn ty(depth: u32) -> BoxedStrategy<Type> {
    let leaf = prop_oneof![Just(Type::INT), Just(Type::BOOL), Just(Type::DYN)];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Type::fun(a, b))
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Lemma 1: every non-? type is compatible with exactly one
    /// ground type.
    #[test]
    fn grounding_is_unique(a in ty(4)) {
        match a.ground_of() {
            None => prop_assert!(a.is_dyn()),
            Some(g) => {
                prop_assert!(a.compatible(&g.ty()));
                for h in Ground::ALL {
                    if h != g {
                        prop_assert!(!a.compatible(&h.ty()));
                    }
                }
            }
        }
    }

    /// Compatibility is reflexive and symmetric (it is famously *not*
    /// transitive).
    #[test]
    fn compatibility_reflexive_symmetric(a in ty(4), b in ty(4)) {
        prop_assert!(a.compatible(&a));
        prop_assert_eq!(a.compatible(&b), b.compatible(&a));
    }

    /// All four subtyping relations are reflexive.
    #[test]
    fn subtyping_reflexive(a in ty(4)) {
        prop_assert!(subtype(&a, &a));
        prop_assert!(pos_subtype(&a, &a));
        prop_assert!(neg_subtype(&a, &a));
        prop_assert!(naive_subtype(&a, &a));
    }

    /// Lemma 4 (tangram), on random deep pairs:
    /// `A <: B ⇔ A <:+ B ∧ A <:- B` and
    /// `A <:n B ⇔ A <:+ B ∧ B <:- A`.
    #[test]
    fn tangram(a in ty(4), b in ty(4)) {
        prop_assert_eq!(subtype(&a, &b), pos_subtype(&a, &b) && neg_subtype(&a, &b));
        prop_assert_eq!(naive_subtype(&a, &b), pos_subtype(&a, &b) && neg_subtype(&b, &a));
    }

    /// `<:` implies `<:n`... does NOT hold in general; but `<:n` and
    /// `<:` both imply compatibility-or-reflexivity facts we rely on:
    /// naive subtyping implies compatibility.
    #[test]
    fn naive_subtype_implies_compatible(a in ty(4), b in ty(4)) {
        if naive_subtype(&a, &b) {
            prop_assert!(a.compatible(&b), "{} <:n {} but incompatible", a, b);
        }
    }

    /// The meet is a greatest lower bound for `<:n` on pointed types.
    #[test]
    fn meet_is_glb(a in ty(3), b in ty(3), c in ty(3)) {
        let m = meet(&a, &b);
        prop_assert!(pointed_naive_subtype(&m, &PointedType::from(&a)));
        prop_assert!(pointed_naive_subtype(&m, &PointedType::from(&b)));
        let pc = PointedType::from(&c);
        if pointed_naive_subtype(&pc, &PointedType::from(&a))
            && pointed_naive_subtype(&pc, &PointedType::from(&b))
        {
            prop_assert!(pointed_naive_subtype(&pc, &m));
        }
    }

    /// The meet is idempotent, commutative, and associative.
    #[test]
    fn meet_is_a_semilattice(a in ty(3), b in ty(3), c in ty(3)) {
        let (pa, pb, pc) = (
            PointedType::from(&a),
            PointedType::from(&b),
            PointedType::from(&c),
        );
        prop_assert_eq!(meet_pointed(&pa, &pa), pa.clone());
        prop_assert_eq!(meet_pointed(&pa, &pb), meet_pointed(&pb, &pa));
        prop_assert_eq!(
            meet_pointed(&meet_pointed(&pa, &pb), &pc),
            meet_pointed(&pa, &meet_pointed(&pb, &pc))
        );
    }

    /// Height and size of types interact as expected with meets:
    /// the meet's (pointed) structure never exceeds both arguments'
    /// heights.
    #[test]
    fn meet_does_not_invent_structure(a in ty(3), b in ty(3)) {
        fn pheight(p: &PointedType) -> usize {
            match p {
                PointedType::Fun(x, y) => 1 + pheight(x).max(pheight(y)),
                _ => 1,
            }
        }
        let m = meet(&a, &b);
        prop_assert!(pheight(&m) <= a.height().max(b.height()));
    }
}
