//! Fresh-name generation for capture-avoiding substitution.

use std::collections::HashSet;

use crate::Name;

/// A supply of fresh variable names.
///
/// Generated names have the shape `base%n`; `%` is not a valid
/// identifier character in the GTLC front end, so generated names can
/// never collide with source-program names.
///
/// ```
/// use bc_syntax::NameSupply;
/// let mut supply = NameSupply::new();
/// let x1 = supply.fresh("x");
/// let x2 = supply.fresh("x");
/// assert_ne!(x1, x2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NameSupply {
    counter: u64,
}

impl NameSupply {
    /// Creates a new supply starting at zero.
    pub fn new() -> NameSupply {
        NameSupply::default()
    }

    /// Returns a name based on `base` that has not been returned
    /// before by this supply.
    pub fn fresh(&mut self, base: &str) -> Name {
        let base = base.split('%').next().unwrap_or(base);
        let name = format!("{base}%{}", self.counter);
        self.counter += 1;
        Name::from(name)
    }
}

/// Returns a name based on `base` that is not in `avoid`.
///
/// Used for one-off freshening during capture-avoiding substitution,
/// where the set of names to avoid is known.
pub fn fresh_avoiding(base: &str, avoid: &HashSet<Name>) -> Name {
    let stem = base.split('%').next().unwrap_or(base);
    if !avoid.contains(base) {
        return Name::from(base);
    }
    for i in 0u64.. {
        let candidate = Name::from(format!("{stem}%{i}").as_str());
        if !avoid.contains(&candidate) {
            return candidate;
        }
    }
    unreachable!("u64 name space exhausted")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supply_never_repeats() {
        let mut s = NameSupply::new();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(s.fresh("x")));
        }
    }

    #[test]
    fn fresh_avoiding_avoids() {
        let mut avoid: HashSet<Name> = HashSet::new();
        avoid.insert(Name::from("x"));
        avoid.insert(Name::from("x%0"));
        let n = fresh_avoiding("x", &avoid);
        assert!(!avoid.contains(&n));
        // If the base name is free it is returned unchanged.
        assert_eq!(&*fresh_avoiding("y", &avoid), "y");
    }

    #[test]
    fn freshening_a_generated_name_keeps_the_stem() {
        let mut avoid: HashSet<Name> = HashSet::new();
        avoid.insert(Name::from("x%0"));
        let n = fresh_avoiding("x%0", &avoid);
        assert!(n.starts_with("x%"));
        assert!(!avoid.contains(&n));
    }
}
