//! A fast, dependency-free hasher for the arena hash maps.
//!
//! Every hot map in the workspace — the hash-consing indices of the
//! type and coercion arenas, the verdict tables, the compose cache —
//! is keyed on tiny `Copy` data: node discriminants plus one or two
//! `u32` ids. For such keys the default SipHash costs more than the
//! rest of the probe put together; interning a 500-node type spends
//! most of its time hashing. This module implements the Fx
//! multiply-rotate hash (the algorithm rustc uses for its interners):
//! not DoS-resistant, which is fine for keys that are arena-internal
//! ids rather than attacker-controlled strings, and several times
//! faster on word-sized input.
//!
//! Use as `HashMap<K, V, FxBuildHasher>` (the build-hasher is a
//! zero-sized `Default`, so `HashMap::default()` works).

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply-rotate hasher: each written word is folded in as
/// `h = (h <<< 5 ^ w) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The multiplicative seed (the 64-bit Fx constant: π's fractional
/// bits, forced odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n.into());
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n.into());
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n.into());
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, so maps using it are
/// `Default`-constructible.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn byte_slices_cover_partial_chunks() {
        // 8-byte chunks plus a remainder both feed the hash.
        assert_ne!(hash_of(&[1u8; 9][..]), hash_of(&[1u8; 10][..]));
        assert_eq!(hash_of(&[7u8; 11][..]), hash_of(&[7u8; 11][..]));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: HashMap<(u32, u32), u32, FxBuildHasher> = HashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i.wrapping_mul(31)), i);
        }
        for i in 0..1000u32 {
            assert_eq!(map.get(&(i, i.wrapping_mul(31))), Some(&i));
        }
    }
}
