//! Pointed types and the type meet `A & B` (§5.2 of the paper).
//!
//! Pointed types extend ordinary types with a least element `⊥`:
//!
//! ```text
//! S, T ::= ι | S → T | ? | ⊥
//! ```
//!
//! Naive subtyping extends to pointed types by `⊥ <:n T` for all `T`.
//! The *meet* of two types is their greatest lower bound with respect
//! to naive subtyping; it always exists as a pointed type and is used
//! to state the Fundamental Property of Casts (Lemma 21).

use std::fmt;
use std::rc::Rc;

use crate::types::{BaseType, Type};

/// Pointed types `S, T ::= ι | S → T | ? | ⊥`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PointedType {
    /// The least element `⊥`, below every type.
    Bottom,
    /// A base type `ι`.
    Base(BaseType),
    /// The dynamic type `?` (the greatest element).
    Dyn,
    /// A function type `S → T` over pointed components.
    Fun(Rc<PointedType>, Rc<PointedType>),
}

impl PointedType {
    /// Builds the pointed function type `dom → cod`.
    pub fn fun(dom: PointedType, cod: PointedType) -> PointedType {
        PointedType::Fun(Rc::new(dom), Rc::new(cod))
    }

    /// Converts back to an ordinary [`Type`] if the pointed type does
    /// not contain `⊥`.
    pub fn to_type(&self) -> Option<Type> {
        match self {
            PointedType::Bottom => None,
            PointedType::Base(b) => Some(Type::Base(*b)),
            PointedType::Dyn => Some(Type::Dyn),
            PointedType::Fun(a, b) => Some(Type::fun(a.to_type()?, b.to_type()?)),
        }
    }
}

impl From<&Type> for PointedType {
    fn from(t: &Type) -> PointedType {
        match t {
            Type::Base(b) => PointedType::Base(*b),
            Type::Dyn => PointedType::Dyn,
            Type::Fun(a, b) => PointedType::fun(PointedType::from(&**a), PointedType::from(&**b)),
        }
    }
}

impl From<Type> for PointedType {
    fn from(t: Type) -> PointedType {
        PointedType::from(&t)
    }
}

impl fmt::Display for PointedType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointedType::Bottom => f.write_str("⊥"),
            PointedType::Base(b) => write!(f, "{b}"),
            PointedType::Dyn => f.write_str("?"),
            PointedType::Fun(a, b) => match **a {
                PointedType::Fun(_, _) => write!(f, "({a}) -> {b}"),
                _ => write!(f, "{a} -> {b}"),
            },
        }
    }
}

/// Naive subtyping on pointed types: `⊥ <:n T` for all `T`, plus the
/// ordinary rules lifted pointwise.
pub fn pointed_naive_subtype(a: &PointedType, b: &PointedType) -> bool {
    match (a, b) {
        (PointedType::Bottom, _) => true,
        (_, PointedType::Dyn) => true,
        (PointedType::Base(x), PointedType::Base(y)) => x == y,
        (PointedType::Fun(a1, a2), PointedType::Fun(b1, b2)) => {
            pointed_naive_subtype(a1, b1) && pointed_naive_subtype(a2, b2)
        }
        _ => false,
    }
}

/// The meet `A & B` of two types: their greatest lower bound with
/// respect to naive subtyping `<:n`, computed as a pointed type.
///
/// ```
/// use bc_syntax::{meet, PointedType, Type};
/// // Int & ? = Int
/// assert_eq!(meet(&Type::INT, &Type::DYN), PointedType::Base(bc_syntax::BaseType::Int));
/// // Int & Bool = ⊥
/// assert_eq!(meet(&Type::INT, &Type::BOOL), PointedType::Bottom);
/// ```
pub fn meet(a: &Type, b: &Type) -> PointedType {
    meet_pointed(&PointedType::from(a), &PointedType::from(b))
}

/// The meet of two pointed types.
pub fn meet_pointed(a: &PointedType, b: &PointedType) -> PointedType {
    match (a, b) {
        (PointedType::Bottom, _) | (_, PointedType::Bottom) => PointedType::Bottom,
        (PointedType::Dyn, t) => t.clone(),
        (t, PointedType::Dyn) => t.clone(),
        (PointedType::Base(x), PointedType::Base(y)) => {
            if x == y {
                PointedType::Base(*x)
            } else {
                PointedType::Bottom
            }
        }
        (PointedType::Fun(a1, a2), PointedType::Fun(b1, b2)) => {
            PointedType::fun(meet_pointed(a1, b1), meet_pointed(a2, b2))
        }
        _ => PointedType::Bottom,
    }
}

/// Checks `A & B <:n C` for ordinary types, the hypothesis of the
/// Fundamental Property of Casts (Lemma 21).
pub fn meet_below(a: &Type, b: &Type, c: &Type) -> bool {
    pointed_naive_subtype(&meet(a, b), &PointedType::from(c))
}

impl PointedType {
    /// Whether this pointed type contains `⊥` anywhere.
    pub fn has_bottom(&self) -> bool {
        match self {
            PointedType::Bottom => true,
            PointedType::Base(_) | PointedType::Dyn => false,
            PointedType::Fun(a, b) => a.has_bottom() || b.has_bottom(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtype::{naive_subtype, sample_types};

    #[test]
    fn meet_is_glb() {
        // For all A, B in a small universe: A&B <:n A, A&B <:n B, and
        // for any C with C <:n A and C <:n B, C <:n A&B.
        let u = sample_types(1);
        for a in &u {
            for b in &u {
                let m = meet(a, b);
                assert!(
                    pointed_naive_subtype(&m, &PointedType::from(a)),
                    "{a} & {b} = {m} must be <=n {a}"
                );
                assert!(pointed_naive_subtype(&m, &PointedType::from(b)));
                for c in &u {
                    let pc = PointedType::from(c);
                    if pointed_naive_subtype(&pc, &PointedType::from(a))
                        && pointed_naive_subtype(&pc, &PointedType::from(b))
                    {
                        assert!(
                            pointed_naive_subtype(&pc, &m),
                            "lower bound {c} must be below {a} & {b} = {m}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn meet_agrees_with_naive_subtype() {
        // A <:n B implies A & B = A.
        let u = sample_types(1);
        for a in &u {
            for b in &u {
                if naive_subtype(a, b) {
                    assert_eq!(meet(a, b), PointedType::from(a));
                }
            }
        }
    }

    #[test]
    fn meet_examples() {
        let ii = Type::fun(Type::INT, Type::INT);
        let di = Type::fun(Type::DYN, Type::INT);
        assert_eq!(meet(&ii, &di), PointedType::from(&ii));
        assert_eq!(
            meet(&Type::fun(Type::BOOL, Type::INT), &ii),
            PointedType::fun(PointedType::Bottom, PointedType::Base(BaseType::Int))
        );
        assert!(meet(&Type::INT, &Type::BOOL).has_bottom());
    }

    #[test]
    fn to_type_round_trip() {
        let t = Type::fun(Type::INT, Type::dyn_fun());
        assert_eq!(PointedType::from(&t).to_type(), Some(t.clone()));
        assert_eq!(PointedType::Bottom.to_type(), None);
    }

    #[test]
    fn display() {
        assert_eq!(meet(&Type::INT, &Type::BOOL).to_string(), "⊥".to_string());
        assert_eq!(
            PointedType::fun(PointedType::Bottom, PointedType::Dyn).to_string(),
            "⊥ -> ?"
        );
    }
}
