//! Blame labels `p, q` with the involutive complement operation `p̄`.
//!
//! Each cast/projection is decorated with a blame label. To indicate on
//! which side of a cast blame lies, each label `p` has a complement
//! `p̄`; complement is involutive (`p̄̄ = p`). Blame allocated to `p` is
//! *positive* (the term inside the cast is at fault), blame allocated
//! to `p̄` is *negative* (the context is at fault).

use std::fmt;

/// A blame label.
///
/// A label is identified by a numeric id plus a polarity; complementing
/// a label flips its polarity and keeps the id:
///
/// ```
/// use bc_syntax::Label;
/// let p = Label::new(3);
/// assert_eq!(p.complement().complement(), p);
/// assert_ne!(p.complement(), p);
/// ```
///
/// The distinguished *bullet* label `•` ([`Label::bullet`]) decorates
/// casts that can never allocate blame (used by the λC → λB translation
/// of Figure 4); it is its own complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label {
    id: u32,
    negated: bool,
}

/// Reserved id for the bullet label `•`.
const BULLET_ID: u32 = u32::MAX;

impl Label {
    /// Creates the positive label with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is `u32::MAX`, which is reserved for [`Label::bullet`].
    pub fn new(id: u32) -> Label {
        assert!(id != BULLET_ID, "label id u32::MAX is reserved for •");
        Label { id, negated: false }
    }

    /// The bullet label `•`, decorating casts that cannot allocate
    /// blame. It is its own complement and is safe for every label.
    pub const fn bullet() -> Label {
        Label {
            id: BULLET_ID,
            negated: false,
        }
    }

    /// Whether this is the bullet label `•`.
    pub fn is_bullet(&self) -> bool {
        self.id == BULLET_ID
    }

    /// The complement `p̄`. Involutive: `p.complement().complement() == p`.
    /// The bullet label is its own complement.
    #[must_use]
    pub fn complement(self) -> Label {
        if self.is_bullet() {
            self
        } else {
            Label {
                id: self.id,
                negated: !self.negated,
            }
        }
    }

    /// The label's numeric id (shared between `p` and `p̄`).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Whether the label is positive (an un-complemented `p`).
    pub fn is_positive(&self) -> bool {
        !self.negated
    }

    /// The positive version of this label (`p` for either `p` or `p̄`).
    #[must_use]
    pub fn positive(self) -> Label {
        Label {
            id: self.id,
            negated: false,
        }
    }
}

/// A supply of fresh blame labels.
///
/// The embedding `⌈·⌉` of Figure 1 and the GTLC cast-insertion pass
/// both introduce "a fresh label for each cast"; this supply hands
/// them out.
///
/// ```
/// use bc_syntax::label::LabelSupply;
/// let mut supply = LabelSupply::new();
/// assert_ne!(supply.fresh(), supply.fresh());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LabelSupply {
    next: u32,
}

impl LabelSupply {
    /// Creates a supply starting from label id 0.
    pub fn new() -> LabelSupply {
        LabelSupply::default()
    }

    /// Creates a supply starting from the given id.
    pub fn starting_at(id: u32) -> LabelSupply {
        LabelSupply { next: id }
    }

    /// Returns a positive label not returned before by this supply.
    ///
    /// # Panics
    ///
    /// Panics if all `u32::MAX` label ids have been exhausted.
    pub fn fresh(&mut self) -> Label {
        let l = Label::new(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("blame label supply exhausted");
        l
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bullet() {
            f.write_str("•")
        } else if self.negated {
            write!(f, "~p{}", self.id)
        } else {
            write!(f, "p{}", self.id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_is_involutive() {
        for id in [0, 1, 17, 4000] {
            let p = Label::new(id);
            assert_eq!(p.complement().complement(), p);
            assert_ne!(p.complement(), p);
            assert_eq!(p.complement().id(), p.id());
        }
    }

    #[test]
    fn bullet_is_self_complementary() {
        let b = Label::bullet();
        assert!(b.is_bullet());
        assert_eq!(b.complement(), b);
    }

    #[test]
    fn display() {
        assert_eq!(Label::new(2).to_string(), "p2");
        assert_eq!(Label::new(2).complement().to_string(), "~p2");
        assert_eq!(Label::bullet().to_string(), "•");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_id_panics() {
        let _ = Label::new(u32::MAX);
    }
}
