//! Operators `op` on base types with their total meaning function
//! `[[op]]`.
//!
//! The paper requires each operator to be specified by a *total*
//! meaning function that preserves types: if `op : ~ι → ι` and
//! `~k : ~ι` then `[[op]](~k) = k` with `k : ι`. We therefore make the
//! partial integer operations total: `quot` and `rem` by zero yield
//! `0`, and arithmetic wraps on overflow.

use std::fmt;

use crate::constant::Constant;
use crate::types::BaseType;

/// Primitive operators on base types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer quotient; division by zero yields `0`.
    Quot,
    /// Integer remainder; remainder by zero yields `0`.
    Rem,
    /// Integer equality.
    Eq,
    /// Integer strict ordering.
    Lt,
    /// Integer non-strict ordering.
    Leq,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// Integer negation (wrapping).
    Neg,
}

impl Op {
    /// All operators, in a fixed order (useful for exhaustive tests and
    /// generators).
    pub const ALL: [Op; 12] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Quot,
        Op::Rem,
        Op::Eq,
        Op::Lt,
        Op::Leq,
        Op::And,
        Op::Or,
        Op::Not,
        Op::Neg,
    ];

    /// The operator's signature `~ι → ι`: argument base types and
    /// result base type.
    pub fn signature(self) -> (&'static [BaseType], BaseType) {
        use BaseType::{Bool, Int};
        match self {
            Op::Add | Op::Sub | Op::Mul | Op::Quot | Op::Rem => (&[Int, Int], Int),
            Op::Eq | Op::Lt | Op::Leq => (&[Int, Int], Bool),
            Op::And | Op::Or => (&[Bool, Bool], Bool),
            Op::Not => (&[Bool], Bool),
            Op::Neg => (&[Int], Int),
        }
    }

    /// The operator's arity.
    pub fn arity(self) -> usize {
        self.signature().0.len()
    }

    /// The total meaning function `[[op]]`.
    ///
    /// # Panics
    ///
    /// Panics if the arguments do not match [`Op::signature`]; the type
    /// systems of the calculi guarantee this never happens for
    /// well-typed programs.
    pub fn apply(self, args: &[Constant]) -> Constant {
        let int = |i: usize| {
            args[i]
                .as_int()
                .unwrap_or_else(|| panic!("operator {self} expected Int argument, got {}", args[i]))
        };
        let boolean = |i: usize| {
            args[i].as_bool().unwrap_or_else(|| {
                panic!("operator {self} expected Bool argument, got {}", args[i])
            })
        };
        assert_eq!(
            args.len(),
            self.arity(),
            "operator {self} applied to {} arguments",
            args.len()
        );
        match self {
            Op::Add => Constant::Int(int(0).wrapping_add(int(1))),
            Op::Sub => Constant::Int(int(0).wrapping_sub(int(1))),
            Op::Mul => Constant::Int(int(0).wrapping_mul(int(1))),
            Op::Quot => {
                let d = int(1);
                Constant::Int(if d == 0 { 0 } else { int(0).wrapping_div(d) })
            }
            Op::Rem => {
                let d = int(1);
                Constant::Int(if d == 0 { 0 } else { int(0).wrapping_rem(d) })
            }
            Op::Eq => Constant::Bool(int(0) == int(1)),
            Op::Lt => Constant::Bool(int(0) < int(1)),
            Op::Leq => Constant::Bool(int(0) <= int(1)),
            Op::And => Constant::Bool(boolean(0) && boolean(1)),
            Op::Or => Constant::Bool(boolean(0) || boolean(1)),
            Op::Not => Constant::Bool(!boolean(0)),
            Op::Neg => Constant::Int(int(0).wrapping_neg()),
        }
    }

    /// The operator's concrete-syntax name, as recognised by the GTLC
    /// front end.
    pub fn name(self) -> &'static str {
        match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Quot => "quot",
            Op::Rem => "rem",
            Op::Eq => "=",
            Op::Lt => "<",
            Op::Leq => "<=",
            Op::And => "and",
            Op::Or => "or",
            Op::Not => "not",
            Op::Neg => "neg",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meaning_preserves_types() {
        // If op : ~ι → ι and ~k : ~ι then [[op]](~k) : ι.
        let samples = [Constant::Int(7), Constant::Int(-3), Constant::Int(0)];
        let bools = [Constant::Bool(true), Constant::Bool(false)];
        for op in Op::ALL {
            let (params, result) = op.signature();
            let args: Vec<Constant> = params
                .iter()
                .map(|p| match p {
                    BaseType::Int => samples[0],
                    BaseType::Bool => bools[0],
                })
                .collect();
            assert_eq!(op.apply(&args).base_type(), result, "{op}");
        }
    }

    #[test]
    fn totality_on_division() {
        assert_eq!(
            Op::Quot.apply(&[Constant::Int(5), Constant::Int(0)]),
            Constant::Int(0)
        );
        assert_eq!(
            Op::Rem.apply(&[Constant::Int(5), Constant::Int(0)]),
            Constant::Int(0)
        );
        assert_eq!(
            Op::Quot.apply(&[Constant::Int(7), Constant::Int(2)]),
            Constant::Int(3)
        );
    }

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(
            Op::Add.apply(&[Constant::Int(i64::MAX), Constant::Int(1)]),
            Constant::Int(i64::MIN)
        );
        assert_eq!(
            Op::Neg.apply(&[Constant::Int(i64::MIN)]),
            Constant::Int(i64::MIN)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Op::Lt.apply(&[Constant::Int(1), Constant::Int(2)]),
            Constant::Bool(true)
        );
        assert_eq!(
            Op::Eq.apply(&[Constant::Int(2), Constant::Int(2)]),
            Constant::Bool(true)
        );
        assert_eq!(
            Op::Leq.apply(&[Constant::Int(3), Constant::Int(2)]),
            Constant::Bool(false)
        );
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn ill_typed_application_panics() {
        let _ = Op::Add.apply(&[Constant::Bool(true), Constant::Int(1)]);
    }
}
