//! The dynamically-typed λ-calculus that Figure 1 embeds into λB via
//! `⌈·⌉`.
//!
//! Untyped terms are ordinary λ-terms over the same constants and
//! operators as the typed calculi, extended (like the calculi
//! themselves) with `if`, `let`, and `fix` as standard constructs. The
//! embedding itself lives in `bc_lambda_b::embed`, since its target is
//! a λB term.

use std::fmt;
use std::rc::Rc;

use crate::constant::Constant;
use crate::op::Op;
use crate::Name;

/// Terms of the dynamically-typed λ-calculus.
#[derive(Debug, Clone, PartialEq)]
pub enum UntypedTerm {
    /// A constant `k`.
    Const(Constant),
    /// An operator application `op(M₁, …, Mₙ)`.
    Op(Op, Vec<UntypedTerm>),
    /// A variable `x`.
    Var(Name),
    /// An abstraction `λx. N` (the bound variable has type `?` after
    /// embedding).
    Lam(Name, Rc<UntypedTerm>),
    /// An application `L M`.
    App(Rc<UntypedTerm>, Rc<UntypedTerm>),
    /// A conditional `if L then M else N`.
    If(Rc<UntypedTerm>, Rc<UntypedTerm>, Rc<UntypedTerm>),
    /// A let binding `let x = M in N`.
    Let(Name, Rc<UntypedTerm>, Rc<UntypedTerm>),
    /// A recursive function `fix f. λx. N`.
    Fix(Name, Name, Rc<UntypedTerm>),
}

impl UntypedTerm {
    /// An integer constant.
    pub fn int(n: i64) -> UntypedTerm {
        UntypedTerm::Const(Constant::Int(n))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> UntypedTerm {
        UntypedTerm::Const(Constant::Bool(b))
    }

    /// A variable.
    pub fn var(name: &str) -> UntypedTerm {
        UntypedTerm::Var(Name::from(name))
    }

    /// An abstraction `λx. body`.
    pub fn lam(name: &str, body: UntypedTerm) -> UntypedTerm {
        UntypedTerm::Lam(Name::from(name), Rc::new(body))
    }

    /// An application `fun arg`.
    pub fn app(fun: UntypedTerm, arg: UntypedTerm) -> UntypedTerm {
        UntypedTerm::App(Rc::new(fun), Rc::new(arg))
    }

    /// A binary operator application.
    pub fn op2(op: Op, lhs: UntypedTerm, rhs: UntypedTerm) -> UntypedTerm {
        UntypedTerm::Op(op, vec![lhs, rhs])
    }

    /// A conditional.
    pub fn ite(c: UntypedTerm, t: UntypedTerm, e: UntypedTerm) -> UntypedTerm {
        UntypedTerm::If(Rc::new(c), Rc::new(t), Rc::new(e))
    }

    /// A let binding.
    pub fn let_(name: &str, bound: UntypedTerm, body: UntypedTerm) -> UntypedTerm {
        UntypedTerm::Let(Name::from(name), Rc::new(bound), Rc::new(body))
    }

    /// A recursive function `fix f. λx. body`.
    pub fn fix(fun: &str, arg: &str, body: UntypedTerm) -> UntypedTerm {
        UntypedTerm::Fix(Name::from(fun), Name::from(arg), Rc::new(body))
    }

    /// The number of syntax nodes in the term.
    pub fn size(&self) -> usize {
        match self {
            UntypedTerm::Const(_) | UntypedTerm::Var(_) => 1,
            UntypedTerm::Op(_, args) => 1 + args.iter().map(UntypedTerm::size).sum::<usize>(),
            UntypedTerm::Lam(_, b) | UntypedTerm::Fix(_, _, b) => 1 + b.size(),
            UntypedTerm::App(a, b) | UntypedTerm::Let(_, a, b) => 1 + a.size() + b.size(),
            UntypedTerm::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
        }
    }
}

impl fmt::Display for UntypedTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UntypedTerm::Const(k) => write!(f, "{k}"),
            UntypedTerm::Var(x) => write!(f, "{x}"),
            UntypedTerm::Op(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            UntypedTerm::Lam(x, b) => write!(f, "(fun {x} => {b})"),
            UntypedTerm::App(a, b) => write!(f, "({a} {b})"),
            UntypedTerm::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            UntypedTerm::Let(x, m, n) => write!(f, "(let {x} = {m} in {n})"),
            UntypedTerm::Fix(g, x, b) => write!(f, "(fix {g} {x} => {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let id = UntypedTerm::lam("x", UntypedTerm::var("x"));
        let t = UntypedTerm::app(id, UntypedTerm::int(1));
        assert_eq!(t.to_string(), "((fun x => x) 1)");
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn omega_is_expressible() {
        // (λx. x x) (λx. x x) — the untyped calculus must be able to
        // express divergence for the embedding tests.
        let half = UntypedTerm::lam(
            "x",
            UntypedTerm::app(UntypedTerm::var("x"), UntypedTerm::var("x")),
        );
        let omega = UntypedTerm::app(half.clone(), half);
        assert_eq!(omega.size(), 9);
    }
}
