//! Append-only concurrent storage primitives for the frozen base
//! tier.
//!
//! Two building blocks live here, both written in safe Rust (the
//! crate forbids `unsafe`):
//!
//! * [`AppendLog`] — a chunked, pointer-stable, append-only vector.
//!   A single writer (serialized externally) pushes entries; any
//!   number of readers concurrently index entries they have been
//!   *told about* (via a watermark published through an
//!   acquire/release edge) without locking. Entries are never moved
//!   or dropped while the log is alive, so an index below a reader's
//!   watermark stays valid forever — that is what makes superseded
//!   epochs safe to keep reading while newer epochs grow past them.
//! * [`AtomicIndex`] — an open-addressed hash index over payload ids
//!   (`u32`), stored as tagged `AtomicU64` slots. Readers probe
//!   lock-free; the single writer inserts new entries and grows by
//!   chaining progressively larger tables (existing tables are never
//!   rehashed, so a reader mid-probe is never invalidated).
//!
//! Both types are deliberately *policy-free*: they do not know about
//! watermarks. Callers pass the watermark as a filter on the payload
//! (`AtomicIndex::get` takes an `eq` closure; over-watermark entries
//! simply fail the filter and read as absent). The memory-ordering
//! contract is the usual publication pattern: the writer fully
//! initializes an entry (its [`OnceLock`] slot) *before* storing the
//! index slot / bumping the published length with `Release`, and
//! readers reach entries only through `Acquire` loads of those
//! words, so a visible id always dereferences to a fully-written
//! entry.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of chunks in an [`AppendLog`] spine / tables in an
/// [`AtomicIndex`] chain. Chunk `k` holds `BASE_CAP << k` entries, so
/// 32 chunks address more than `u32` ids can name — growth never runs
/// off the end before the id space does.
const SPINE: usize = 32;

/// Capacity of the first chunk / table. Subsequent ones double.
const BASE_CAP: usize = 1024;

/// Locates index `i` in the doubling-chunk layout: chunk `c` spans
/// global indices `[BASE_CAP * (2^c - 1), BASE_CAP * (2^(c+1) - 1))`.
/// Returns `(chunk, offset_within_chunk)`.
#[inline]
fn locate(i: usize) -> (usize, usize) {
    let n = i / BASE_CAP + 1;
    let chunk = (usize::BITS - 1 - n.leading_zeros()) as usize;
    let within = i - BASE_CAP * ((1 << chunk) - 1);
    (chunk, within)
}

/// A chunked, append-only log with lock-free reads.
///
/// The spine holds a fixed number of chunks of doubling capacity; a
/// chunk, once allocated, is never moved or freed while the log
/// lives, so `get` can hand out plain references. Each entry is an
/// [`OnceLock`] slot: the writer sets it exactly once, then publishes
/// it by storing the new length with `Release`. Readers that learned
/// an index from an `Acquire` load of the length (or of an
/// [`AtomicIndex`] slot written after the push) are guaranteed to
/// find the slot initialized.
///
/// Writer exclusion is **external**: callers wrap pushes in their own
/// mutex. Readers need nothing.
pub struct AppendLog<T> {
    spine: [OnceLock<Box<[OnceLock<T>]>>; SPINE],
    len: AtomicUsize,
}

impl<T> AppendLog<T> {
    /// An empty log. Allocates no chunks until the first push.
    pub fn new() -> AppendLog<T> {
        AppendLog {
            spine: [const { OnceLock::new() }; SPINE],
            len: AtomicUsize::new(0),
        }
    }

    /// Number of published entries (an `Acquire` load: every index
    /// below the returned value is safe to `get`).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no entry has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `value`, returning its index. Single-writer only: the
    /// caller must hold whatever lock serializes writers. The entry
    /// is fully initialized before the length moves (`Release`), so
    /// concurrent readers either don't see the index yet or see the
    /// finished entry.
    pub fn push(&self, value: T) -> usize {
        let i = self.len.load(Ordering::Relaxed);
        let (chunk, within) = locate(i);
        let slab = self.spine[chunk].get_or_init(|| {
            let cap = BASE_CAP << chunk;
            let mut v = Vec::with_capacity(cap);
            v.resize_with(cap, OnceLock::new);
            v.into_boxed_slice()
        });
        let placed = slab[within].set(value);
        debug_assert!(placed.is_ok(), "AppendLog slot {i} double-initialized");
        self.len.store(i + 1, Ordering::Release);
        i
    }

    /// Reads entry `i`. The caller must have learned `i` through a
    /// published watermark (see [`AppendLog::len`]); indexing past
    /// the published length panics.
    pub fn get(&self, i: usize) -> &T {
        let (chunk, within) = locate(i);
        self.spine[chunk]
            .get()
            .and_then(|slab| slab[within].get())
            .expect("AppendLog index past the published watermark")
    }
}

impl<T> Default for AppendLog<T> {
    fn default() -> AppendLog<T> {
        AppendLog::new()
    }
}

impl<T> std::fmt::Debug for AppendLog<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppendLog")
            .field("len", &self.len())
            .finish()
    }
}

/// An append-only hash index mapping 64-bit hashes to `u32` payloads
/// (ids or row numbers), probed lock-free.
///
/// Storage is a chain of open-addressed tables of doubling capacity.
/// A slot packs the upper 32 bits of the key's hash (the *tag*) with
/// `payload + 1` (so an all-zero slot means empty). The single
/// writer only ever inserts into the newest table and starts a new,
/// larger table when the newest would exceed half full; older tables
/// are never rehashed or dropped, so readers probe them without any
/// coordination. A lookup therefore probes every table in the chain.
///
/// The index stores no keys — on a tag match, `get` calls the
/// caller's `eq` closure with the candidate payload, and the caller
/// compares against its own entry storage (typically an
/// [`AppendLog`]). The closure is also where watermark filtering
/// happens: returning `false` for an over-watermark payload makes
/// the entry read as absent, because hash-consed callers store each
/// distinct key at most once.
pub struct AtomicIndex {
    tables: [OnceLock<Box<[AtomicU64]>>; SPINE],
    /// Index of the newest (insert-target) table. Writer-only.
    active: AtomicUsize,
    /// Occupied slots in the newest table. Writer-only.
    active_len: AtomicUsize,
}

impl AtomicIndex {
    /// An empty index. Allocates no tables until the first insert.
    pub fn new() -> AtomicIndex {
        AtomicIndex {
            tables: [const { OnceLock::new() }; SPINE],
            active: AtomicUsize::new(0),
            active_len: AtomicUsize::new(0),
        }
    }

    /// Probes for an entry whose hash matches `hash` and whose
    /// payload satisfies `eq`. Lock-free; runs concurrently with a
    /// writer's `insert` (an in-flight insert is either invisible or
    /// fully published, never torn, because slots are single
    /// `AtomicU64` words).
    pub fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let tag = hash >> 32;
        for table in &self.tables {
            let Some(slots) = table.get() else { break };
            let mask = slots.len() - 1;
            let mut i = (hash as usize) & mask;
            loop {
                let slot = slots[i].load(Ordering::Acquire);
                if slot == 0 {
                    break;
                }
                if slot >> 32 == tag {
                    let payload = (slot as u32).wrapping_sub(1);
                    if eq(payload) {
                        return Some(payload);
                    }
                }
                i = (i + 1) & mask;
            }
        }
        None
    }

    /// Inserts `payload` under `hash`. Single-writer only (external
    /// lock), and the caller must have established the key is absent
    /// (via [`AtomicIndex::get`] without a watermark filter) — the
    /// index never stores one key twice.
    ///
    /// The slot store is `Release`: a reader that observes it also
    /// observes every write the writer made before it (in
    /// particular, the entry the payload points at).
    pub fn insert(&self, hash: u64, payload: u32) {
        let mut active = self.active.load(Ordering::Relaxed);
        let mut filled = self.active_len.load(Ordering::Relaxed);
        let cap = BASE_CAP << active;
        // Keep the newest table at most half full so probes stay
        // short and always terminate at an empty slot.
        if self.tables[active].get().is_some() && (filled + 1) * 2 > cap {
            active += 1;
            filled = 0;
            self.active.store(active, Ordering::Relaxed);
            self.active_len.store(0, Ordering::Relaxed);
        }
        let cap = BASE_CAP << active;
        let slots = self.tables[active].get_or_init(|| {
            let mut v = Vec::with_capacity(cap);
            v.resize_with(cap, || AtomicU64::new(0));
            v.into_boxed_slice()
        });
        let mask = slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while slots[i].load(Ordering::Relaxed) != 0 {
            i = (i + 1) & mask;
        }
        debug_assert!(payload < u32::MAX, "payload id space exhausted");
        let slot = ((hash >> 32) << 32) | (u64::from(payload) + 1);
        slots[i].store(slot, Ordering::Release);
        self.active_len.store(filled + 1, Ordering::Relaxed);
    }
}

impl Default for AtomicIndex {
    fn default() -> AtomicIndex {
        AtomicIndex::new()
    }
}

impl std::fmt::Debug for AtomicIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicIndex")
            .field("tables", &(self.active.load(Ordering::Relaxed) + 1))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(BASE_CAP - 1), (0, BASE_CAP - 1));
        assert_eq!(locate(BASE_CAP), (1, 0));
        assert_eq!(locate(3 * BASE_CAP - 1), (1, 2 * BASE_CAP - 1));
        assert_eq!(locate(3 * BASE_CAP), (2, 0));
        // Consecutive indices tile the chunks with no gaps.
        let mut prev = locate(0);
        for i in 1..(BASE_CAP * 40) {
            let cur = locate(i);
            if cur.0 == prev.0 {
                assert_eq!(cur.1, prev.1 + 1, "gap inside chunk at {i}");
            } else {
                assert_eq!(cur.0, prev.0 + 1, "chunk skip at {i}");
                assert_eq!(cur.1, 0, "chunk {0} starts mid-slab", cur.0);
                assert_eq!(prev.1, BASE_CAP * (1 << prev.0) - 1);
            }
            prev = cur;
        }
    }

    #[test]
    fn append_log_round_trips_across_chunks() {
        let log = AppendLog::new();
        for i in 0..(BASE_CAP * 5) {
            assert_eq!(log.push(i * 3), i);
        }
        assert_eq!(log.len(), BASE_CAP * 5);
        for i in 0..log.len() {
            assert_eq!(*log.get(i), i * 3);
        }
    }

    #[test]
    fn index_grows_past_one_table_and_still_finds_everything() {
        let log = AppendLog::new();
        let index = AtomicIndex::new();
        let hash = |v: usize| {
            // A deliberately weak spread so probes collide.
            (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        for v in 0..(BASE_CAP * 2) {
            assert!(index.get(hash(v), |p| *log.get(p as usize) == v).is_none());
            let id = log.push(v) as u32;
            index.insert(hash(v), id);
        }
        for v in 0..(BASE_CAP * 2) {
            let found = index.get(hash(v), |p| *log.get(p as usize) == v);
            assert_eq!(found, Some(v as u32), "lost key {v}");
        }
        assert!(index.get(hash(BASE_CAP * 9), |_| true).is_none());
    }

    #[test]
    fn concurrent_readers_never_see_torn_entries() {
        let log: Arc<AppendLog<(u64, u64)>> = Arc::new(AppendLog::new());
        let index = Arc::new(AtomicIndex::new());
        const N: usize = 20_000;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let log = Arc::clone(&log);
                let index = Arc::clone(&index);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while seen < N {
                        let published = log.len();
                        for i in seen..published {
                            let &(a, b) = log.get(i);
                            assert_eq!(b, a ^ 0xABCD, "torn entry at {i}");
                        }
                        seen = published;
                        let probe = (seen.max(1) - 1) as u64;
                        let hash = probe.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        if let Some(p) = index.get(hash, |p| log.get(p as usize).0 == probe) {
                            assert_eq!(log.get(p as usize).0, probe);
                        }
                    }
                })
            })
            .collect();
        for v in 0..N as u64 {
            let id = log.push((v, v ^ 0xABCD)) as u32;
            index.insert(v.wrapping_mul(0x9E37_79B9_7F4A_7C15), id);
        }
        for r in readers {
            r.join().unwrap();
        }
    }
}
