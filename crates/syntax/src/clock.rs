//! A size-capped map with **second-chance (clock) eviction** — the
//! shared eviction engine behind every memo table in the workspace.
//!
//! Both the coercion `ComposeCache` (in `bc_core::arena`) and the
//! [`TypeArena`](crate::intern::TypeArena) verdict tables memoize
//! recompute-safe answers keyed on small `Copy` ids, and both need the
//! same protection: a single program's working set is bounded, but a
//! long-lived multi-tenant server interning adversarial inputs is not,
//! so the table must cap its residency without ever changing an
//! answer. This module implements that policy once.
//!
//! # The policy
//!
//! The map holds at most `capacity` entries. Every hit sets the
//! entry's *reference bit*. Inserting beyond capacity runs the classic
//! clock sweep over insertion order: the oldest entry is evicted
//! unless its bit is set, in which case the bit is cleared and the
//! entry goes around again (its "second chance"). Two subtleties the
//! tests pin down:
//!
//! * **New entries are admitted with their bit set** — otherwise a
//!   cache saturated with hot entries would evict each newcomer
//!   immediately (the just-inserted, unreferenced entry would be the
//!   sweep's first victim) and never take new work.
//! * **Re-inserting a present key leaves the clock untouched** —
//!   recursive memoization (an outer computation re-inserting an inner
//!   key) must not duplicate clock slots, or the queue and map would
//!   disagree about residency.
//!
//! Eviction is only *safe* for recompute-safe values: a dropped entry
//! is recomputed (and re-cached) on next use. Callers own their own
//! hit/miss counters; the map counts [`ClockMap::evictions`].

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use crate::fxhash::FxBuildHasher;

/// A stored value with its second-chance reference bit.
#[derive(Debug, Clone, Copy)]
struct ClockEntry<V> {
    value: V,
    /// Set on every hit; a set bit buys the entry one extra trip
    /// around the eviction clock.
    referenced: bool,
}

/// A bounded memo map evicting by the second-chance (clock) policy.
///
/// See the [module docs](self) for the policy and its invariants.
#[derive(Debug, Clone)]
pub struct ClockMap<K, V> {
    /// Fx-hashed: memo keys are tuples of small `Copy` ids, for which
    /// SipHash would cost more than the probe itself.
    map: HashMap<K, ClockEntry<V>, FxBuildHasher>,
    /// Insertion-ordered keys forming the clock queue (every map key
    /// appears exactly once).
    clock: VecDeque<K>,
    capacity: usize,
    evictions: u64,
}

impl<K: Copy + Eq + Hash, V: Copy> ClockMap<K, V> {
    /// An empty map holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a map that cannot hold a single
    /// entry would make every lookup a miss *and* every insert an
    /// eviction).
    pub fn with_capacity(capacity: usize) -> ClockMap<K, V> {
        assert!(capacity > 0, "ClockMap capacity must be at least 1");
        ClockMap {
            map: HashMap::default(),
            clock: VecDeque::new(),
            capacity,
            evictions: 0,
        }
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted by the clock sweep so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterates over the resident entries in unspecified order,
    /// without touching any reference bit. Used to snapshot a warm
    /// memo table into a frozen (read-only, shareable) base tier.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, e)| (k, &e.value))
    }

    /// Looks up an entry, marking it recently used.
    pub fn lookup(&mut self, key: &K) -> Option<V> {
        let entry = self.map.get_mut(key)?;
        entry.referenced = true;
        Some(entry.value)
    }

    /// Inserts a freshly computed entry, evicting per second-chance if
    /// the map is full. New entries are admitted with their reference
    /// bit *set* (see the [module docs](self)).
    pub fn insert(&mut self, key: K, value: V) {
        if self
            .map
            .insert(
                key,
                ClockEntry {
                    value,
                    referenced: true,
                },
            )
            .is_some()
        {
            // Key already queued (a recursive computation re-inserted
            // an inner key); the clock entry stays where it is.
            return;
        }
        self.clock.push_back(key);
        while self.map.len() > self.capacity {
            let k = self
                .clock
                .pop_front()
                .expect("clock queue tracks every stored entry");
            match self.map.get_mut(&k) {
                Some(e) if e.referenced => {
                    e.referenced = false;
                    self.clock.push_back(k);
                }
                Some(_) => {
                    self.map.remove(&k);
                    self.evictions += 1;
                }
                None => unreachable!("clock queue held a key the map does not"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_what_insert_stored() {
        let mut m: ClockMap<u32, u32> = ClockMap::with_capacity(4);
        assert!(m.is_empty());
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.lookup(&1), Some(10));
        assert_eq!(m.lookup(&2), Some(20));
        assert_eq!(m.lookup(&3), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.capacity(), 4);
    }

    #[test]
    fn residency_never_exceeds_capacity() {
        let mut m: ClockMap<u32, u32> = ClockMap::with_capacity(4);
        for k in 0..64 {
            m.insert(k, k);
        }
        assert!(m.len() <= 4, "grew to {}", m.len());
        assert!(m.evictions() > 0);
    }

    #[test]
    fn hot_entries_survive_cold_churn() {
        let mut m: ClockMap<u32, u32> = ClockMap::with_capacity(8);
        m.insert(1000, 1);
        let mut hot_losses = 0;
        for k in 0..16 {
            if m.lookup(&1000).is_none() {
                hot_losses += 1;
                m.insert(1000, 1);
            }
            m.insert(k, k);
        }
        assert!(hot_losses <= 4, "hot entry evicted {hot_losses} times");
    }

    #[test]
    fn reinserting_a_present_key_does_not_duplicate_clock_slots() {
        let mut m: ClockMap<u32, u32> = ClockMap::with_capacity(2);
        m.insert(1, 1);
        m.insert(1, 2); // overwrite in place
        assert_eq!(m.lookup(&1), Some(2));
        assert_eq!(m.len(), 1);
        // Filling past capacity still terminates and stays capped (a
        // duplicated clock slot would break the sweep's accounting).
        for k in 2..20 {
            m.insert(k, k);
        }
        assert!(m.len() <= 2);
    }

    #[test]
    fn newcomers_are_admitted_to_a_hot_map() {
        let mut m: ClockMap<u32, u32> = ClockMap::with_capacity(2);
        m.insert(1, 1);
        m.insert(2, 2);
        m.lookup(&1);
        m.lookup(&2);
        m.insert(3, 3);
        assert_eq!(
            m.lookup(&3),
            Some(3),
            "newcomer must not be the first victim"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _: ClockMap<u32, u32> = ClockMap::with_capacity(0);
    }
}
