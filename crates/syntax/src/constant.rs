//! Constants `k` of base type.

use std::fmt;

use crate::types::BaseType;

/// A constant `k`. Every constant has a base type `ι`
/// ([`Constant::base_type`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constant {
    /// An integer constant.
    Int(i64),
    /// A boolean constant.
    Bool(bool),
}

impl Constant {
    /// The base type `ι` of this constant (`k : ι`).
    pub fn base_type(&self) -> BaseType {
        match self {
            Constant::Int(_) => BaseType::Int,
            Constant::Bool(_) => BaseType::Bool,
        }
    }

    /// Extracts the integer value, if this is an [`Constant::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Constant::Int(n) => Some(*n),
            Constant::Bool(_) => None,
        }
    }

    /// Extracts the boolean value, if this is a [`Constant::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Constant::Bool(b) => Some(*b),
            Constant::Int(_) => None,
        }
    }
}

impl From<i64> for Constant {
    fn from(n: i64) -> Constant {
        Constant::Int(n)
    }
}

impl From<bool> for Constant {
    fn from(b: bool) -> Constant {
        Constant::Bool(b)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(n) => write!(f, "{n}"),
            Constant::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typing_and_accessors() {
        assert_eq!(Constant::Int(3).base_type(), BaseType::Int);
        assert_eq!(Constant::Bool(true).base_type(), BaseType::Bool);
        assert_eq!(Constant::Int(3).as_int(), Some(3));
        assert_eq!(Constant::Int(3).as_bool(), None);
        assert_eq!(Constant::from(false), Constant::Bool(false));
        assert_eq!(Constant::from(9i64).to_string(), "9");
    }
}
