//! A hash-consing arena for types, with memoized relational queries.
//!
//! [`crate::types::Type`] is an `Rc` tree: every `compatible`,
//! `ground_of`, or subtyping query walks both operands and every
//! comparison is structural. That is the right *specification* — small,
//! obviously the paper's Figure 1/Figure 2 — but it makes types the
//! last tree-shaped hot path in the system: cast-heavy programs ask the
//! same handful of compatibility and subtyping questions over and over
//! (elaboration, cast insertion, translation, typing audits), paying
//! O(size) every time.
//!
//! This module interns types the same way `bc_core::arena` interns λS
//! coercions. A [`TypeArena`] stores each distinct type node exactly
//! once and hands out copyable [`TypeId`] handles, so that
//!
//! * **equality is O(1)** — two interned types are equal iff their ids
//!   are equal (hash-consing canonicity), which also makes every
//!   relational query's reflexive fast path free;
//! * **per-node facts are precomputed** — [`TypeArena::ground_of`],
//!   [`TypeArena::as_ground`], [`TypeArena::height`], and
//!   [`TypeArena::size`] are O(1) lookups computed once at interning
//!   time;
//! * **relational queries memoize** — [`TypeArena::compatible`] and the
//!   four subtyping relations of Figure 2 cache their verdict per id
//!   pair, so every repeated query is a single hash lookup.
//!
//! The tree [`Type`] remains the *exchange format*: [`TypeArena::intern`]
//! accepts a tree and [`TypeArena::resolve`] rebuilds one, and the
//! memoized relations agree with the tree implementations in
//! [`crate::types`] and [`crate::subtype`](mod@crate::subtype) by
//! construction (validated
//! by property test in `tests/type_arena_props.rs`).
//!
//! # Interning invariants
//!
//! 1. *Canonicity*: `A.intern(s) == A.intern(t)` iff `s == t`
//!    (structurally); interning the same type twice returns the same
//!    id.
//! 2. *Round trip*: `A.resolve(A.intern(t)) == t`.
//! 3. *Stability*: ids are never invalidated; an arena only grows.
//!    (Ids are **not** meaningful across arenas.)
//! 4. *Agreement*: every memoized query equals its tree specification
//!    on resolved operands.
//!
//! # Tiered interning
//!
//! For parallel serving, a warm arena can be **frozen**
//! ([`TypeArena::freeze`]) into an immutable, `Send + Sync`
//! [`FrozenTypes`] snapshot, and any number of **overlay** arenas
//! ([`TypeArena::with_base`]) layered over one `Arc` of it. An
//! overlay consults the base first on every intern and every
//! memoized query, and interns only genuinely new nodes locally,
//! with ids offset past the base — so N worker threads share one
//! warm working set and the invariants above hold per overlay (base
//! ids mean the same type in all of them).
//!
//! ```
//! use bc_syntax::{Type, TypeArena};
//!
//! let mut types = TypeArena::new();
//! let a = types.intern(&Type::fun(Type::INT, Type::DYN));
//! let b = types.intern(&Type::fun(Type::INT, Type::DYN));
//! assert_eq!(a, b); // same type, same id
//!
//! let d = types.dyn_ty();
//! assert!(types.compatible(a, d));
//! assert!(types.compatible(a, d)); // answered from the memo table
//! assert!(types.query_stats().hits >= 1);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasher;
use std::sync::{Arc, Mutex};

use crate::clock::ClockMap;
use crate::fxhash::FxBuildHasher;
use crate::label::Label;
use crate::slab::{AppendLog, AtomicIndex};
use crate::types::{BaseType, Ground, Type};

/// A handle to an interned type: a dense index into a [`TypeArena`].
/// `Copy + Eq + Hash`; equal ids denote structurally equal types
/// within one arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

impl TypeId {
    /// The raw index (for metrics and debugging).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An interned type node — [`Type`] with function children replaced by
/// [`TypeId`]s. `Copy`, so consumers can match on nodes without
/// touching the arena twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TNode {
    /// A base type `ι`.
    Base(BaseType),
    /// The dynamic type `?`.
    Dyn,
    /// A function type `A → B`, children interned.
    Fun(TypeId, TypeId),
}

/// Per-node facts computed once at interning time.
#[derive(Debug, Clone, Copy)]
struct TypeMeta {
    height: u32,
    size: u64,
    /// Lemma 1: the unique ground type compatible with the node
    /// (`None` exactly for `?`).
    ground_of: Option<Ground>,
    /// Whether the node *is* a ground type (`ι` or exactly `? → ?`).
    as_ground: Option<Ground>,
}

/// Hit/miss/eviction counters for the memoized relational queries of a
/// [`TypeArena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries answered from the memo tables (or the O(1) fast paths).
    pub hits: u64,
    /// Queries computed structurally (then memoized).
    pub misses: u64,
    /// Memoized verdicts evicted by the second-chance policy.
    pub evictions: u64,
    /// The subset of [`QueryStats::hits`] answered by the frozen base
    /// tier's verdict table (always zero for an arena without a base).
    pub base_hits: u64,
}

/// The five memoized relations — `∼` plus the four subtyping
/// relations of Figure 2 — as memo-table tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Rel {
    /// Compatibility `A ∼ B` (keys canonically ordered: symmetric).
    Compat,
    /// Ordinary subtyping `A <: B`.
    Sub,
    /// Positive subtyping `A <:+ B`.
    Pos,
    /// Negative subtyping `A <:- B`.
    Neg,
    /// Naive subtyping `A <:n B`.
    Naive,
}

/// The append-only concurrent storage behind every [`FrozenTypes`]
/// view: type nodes, their metadata, the hash-cons index, and the
/// consolidated verdict table, all in [`AppendLog`]s probed through
/// [`AtomicIndex`]es.
///
/// One slab is shared by an entire epoch *lineage*: freezing an
/// overlay built over a view of this slab **appends** the overlay's
/// genuinely new rows (O(overlay)) instead of copying the base
/// (O(base)), and the resulting view is just a pair of larger
/// watermarks over the same storage. Entries below a published
/// watermark are immutable and pointer-stable forever, so superseded
/// views stay valid while newer ones grow past them. Readers never
/// lock; the `writer` mutex only serializes appenders.
struct TypeSlab {
    nodes: AppendLog<TNode>,
    meta: AppendLog<TypeMeta>,
    node_index: AtomicIndex,
    /// The consolidated verdict table, as append-ordered rows (the
    /// base tier never evicts, so it needs no clock — only an index).
    verdicts: AppendLog<((Rel, TypeId, TypeId), bool)>,
    verdict_index: AtomicIndex,
    hasher: FxBuildHasher,
    /// Serializes appenders (freezes of overlays over this slab).
    /// Readers never take it.
    writer: Mutex<()>,
}

impl TypeSlab {
    fn new() -> TypeSlab {
        TypeSlab {
            nodes: AppendLog::new(),
            meta: AppendLog::new(),
            node_index: AtomicIndex::new(),
            verdicts: AppendLog::new(),
            verdict_index: AtomicIndex::new(),
            hasher: FxBuildHasher::default(),
            writer: Mutex::new(()),
        }
    }

    /// Lock-free hash-cons probe for `node` among slab ids below
    /// `below` (a watermark, or `usize::MAX` for a writer-side probe
    /// that must see everything).
    fn probe_node(&self, node: &TNode, below: usize) -> Option<TypeId> {
        let hash = self.hasher.hash_one(node);
        self.node_index
            .get(hash, |id| {
                (id as usize) < below && *self.nodes.get(id as usize) == *node
            })
            .map(TypeId)
    }

    /// Lock-free verdict probe among rows below `below`.
    fn probe_verdict(&self, key: &(Rel, TypeId, TypeId), below: usize) -> Option<bool> {
        let hash = self.hasher.hash_one(key);
        self.verdict_index
            .get(hash, |row| {
                (row as usize) < below && self.verdicts.get(row as usize).0 == *key
            })
            .map(|row| self.verdicts.get(row as usize).1)
    }

    /// Appends a node known to be absent (writer lock held, or slab
    /// not yet shared). The entry is fully written before its index
    /// slot publishes, per the [`crate::slab`] ordering contract.
    fn append_node(&self, node: TNode, meta: TypeMeta) -> TypeId {
        let id = self.nodes.push(node);
        self.meta.push(meta);
        self.node_index
            .insert(self.hasher.hash_one(node), id as u32);
        TypeId(id as u32)
    }

    /// Appends a verdict row known to be absent (writer lock held, or
    /// slab not yet shared).
    fn append_verdict(&self, key: (Rel, TypeId, TypeId), verdict: bool) {
        let row = self.verdicts.push((key, verdict));
        self.verdict_index
            .insert(self.hasher.hash_one(key), row as u32);
    }
}

/// A frozen, read-only view of a [`TypeArena`] — the shared base tier
/// of the two-tier interning scheme.
///
/// A view is a pair of **watermarks** (nodes, verdict rows) over an
/// append-only concurrent slab. Freezing a warm flat arena
/// ([`TypeArena::freeze`]) builds a fresh slab; freezing an *overlay*
/// **appends** the overlay's genuinely new nodes and verdicts to its
/// base's slab — O(overlay), not O(base) — and returns a view with
/// higher watermarks over the same storage. Ids are never re-assigned,
/// so the new view [`extends`](FrozenTypes::extends) the old one by
/// construction, and views superseded by later freezes stay valid
/// forever (their entries are immutable and pointer-stable below their
/// watermarks). The view is `Send + Sync`; readers below the watermark
/// are wait-free (no locks — an atomic-word index probe plus a chunked
/// log load).
///
/// # Id-offset contract
///
/// Ids `0..len()` denote the frozen nodes and mean the same thing in
/// *every* overlay built over this base (and in the arena that was
/// frozen). Ids `>= len()` are overlay-local: each overlay mints its
/// own, so they are only meaningful within the overlay that created
/// them — exactly the pre-existing "ids are not meaningful across
/// arenas" rule, restricted to the local tier.
#[derive(Clone)]
pub struct FrozenTypes {
    slab: Arc<TypeSlab>,
    /// Nodes visible to this view: slab ids `0..nodes_mark`.
    nodes_mark: usize,
    /// Verdict rows visible to this view: rows `0..verdicts_mark`.
    verdicts_mark: usize,
    /// The slab node count when this view's freeze began appending
    /// (zero for a flat build): the receipt for
    /// [`FrozenTypes::contiguous_over`].
    appended_from: usize,
}

impl fmt::Debug for FrozenTypes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenTypes")
            .field("nodes", &self.nodes_mark)
            .field("verdicts", &self.verdicts_mark)
            .finish()
    }
}

impl FrozenTypes {
    /// Number of frozen type nodes (the id-offset of every overlay
    /// built over this base).
    pub fn len(&self) -> usize {
        self.nodes_mark
    }

    /// Whether the snapshot holds no nodes (never true: the leaf
    /// types are pre-interned in every arena).
    pub fn is_empty(&self) -> bool {
        self.nodes_mark == 0
    }

    /// Number of frozen relational verdicts.
    pub fn verdicts_len(&self) -> usize {
        self.verdicts_mark
    }

    /// Whether this snapshot *extends* `other`: every node of `other`
    /// appears here, at the same id. This is the id-stability
    /// condition for hot-swapping bases. Because freezing an overlay
    /// appends to its base's slab and ids are never re-assigned, a
    /// re-frozen overlay extends its base **by construction**; the
    /// check is O(1) — same slab, watermarks at least as high —
    /// instead of the prefix comparison the clone-based design needed.
    /// Views over different slabs (independent freeze lineages) never
    /// extend each other.
    pub fn extends(&self, other: &FrozenTypes) -> bool {
        Arc::ptr_eq(&self.slab, &other.slab)
            && other.nodes_mark <= self.nodes_mark
            && other.verdicts_mark <= self.verdicts_mark
    }

    /// Whether this view's freeze appended *contiguously* over
    /// `other`: same slab, and no sibling freeze had grown the slab
    /// past `other`'s watermark when this one started. When true, the
    /// freezing overlay's local ids were assigned verbatim (its id
    /// `other.len() + k` is slab id `other.len() + k`), so ids minted
    /// by the frozen session — not just inherited base ids — remain
    /// valid against this view. Promotion relies on this: the pool
    /// serializes promoters, so its freezes are always contiguous.
    pub fn contiguous_over(&self, other: &FrozenTypes) -> bool {
        Arc::ptr_eq(&self.slab, &other.slab) && self.appended_from == other.nodes_mark
    }

    /// The node behind a visible id (callers stay below `len()`).
    fn node_at(&self, i: usize) -> TNode {
        debug_assert!(i < self.nodes_mark, "read past the view watermark");
        *self.slab.nodes.get(i)
    }

    /// The metadata behind a visible id.
    fn meta_at(&self, i: usize) -> TypeMeta {
        debug_assert!(i < self.nodes_mark, "read past the view watermark");
        *self.slab.meta.get(i)
    }

    /// Hash-cons probe filtered to this view's watermark: a node that
    /// only exists above it (appended by a later freeze) reads as
    /// absent, so overlays intern it locally — over-watermark slab
    /// ids must never leak into a session keyed to this view.
    fn lookup_node(&self, node: &TNode) -> Option<TypeId> {
        self.slab.probe_node(node, self.nodes_mark)
    }

    /// Verdict probe filtered to this view's watermark.
    fn lookup_verdict(&self, key: &(Rel, TypeId, TypeId)) -> Option<bool> {
        self.slab.probe_verdict(key, self.verdicts_mark)
    }
}

/// A hash-consing interner for types, with memoized `compatible` and
/// subtyping queries.
///
/// See the [module docs](self) for the interning invariants. Unlike
/// the coercion arena's `ComposeCache` (in `bc_core::arena`), the
/// memo tables live *inside* the arena — they hold only booleans, so
/// there is no foreign-id hazard to guard against and no reason to let
/// callers manage their lifetime separately.
///
/// # Verdict eviction
///
/// The verdict table holds at most [`TypeArena::memo_capacity`]
/// entries (default [`TypeArena::DEFAULT_MEMO_CAPACITY`]), evicted by
/// the same second-chance [`ClockMap`] the coercion `ComposeCache`
/// uses. Verdicts are recompute-safe booleans, so eviction can never
/// change an answer — it only turns a would-be hit into a
/// recomputation. Single-program workloads ask O(program types²)
/// distinct questions and never evict; the cap protects a long-lived
/// multi-tenant session from unbounded O(n²) pair growth across five
/// relations.
#[derive(Debug, Clone)]
pub struct TypeArena {
    /// The frozen base tier, when this arena is an overlay: a shared,
    /// read-only snapshot consulted before the local tier on every
    /// intern and every memoized query. `None` for a flat arena.
    base: Option<Arc<FrozenTypes>>,
    /// `base.len()`, cached (zero for a flat arena): the id offset of
    /// the local tier.
    base_len: usize,
    /// Local (overlay) nodes; global id = `base_len` + local index.
    nodes: Vec<TNode>,
    meta: Vec<TypeMeta>,
    /// The hash-consing index of the *local* tier (the base has its
    /// own frozen index, probed first). Fx-hashed: keys are one
    /// discriminant plus at most two u32 ids, so hashing must not
    /// dominate the probe (interning a type walks this map once per
    /// node).
    index: HashMap<TNode, TypeId, FxBuildHasher>,
    /// Memoized verdicts of all five relations, tagged by [`Rel`]
    /// (compatibility keys are stored with `a <= b`: the relation is
    /// symmetric, so one entry serves both orders), behind the shared
    /// second-chance eviction engine.
    memo: ClockMap<(Rel, TypeId, TypeId), bool>,
    /// Lazily materialised tree forms, one per node (spanning base
    /// and local tiers), shared via `Rc` substructure:
    /// [`TypeArena::resolve_shared`] builds each distinct type's tree
    /// exactly once per arena lifetime and hands out refcount-bump
    /// clones thereafter. Kept local even for base ids — `Rc` trees
    /// are not shareable across threads.
    trees: Vec<Option<Type>>,
    stats: QueryStats,
    /// Node interns answered by the frozen base index.
    base_node_hits: u64,
}

impl Default for TypeArena {
    fn default() -> TypeArena {
        TypeArena::with_memo_capacity(TypeArena::DEFAULT_MEMO_CAPACITY)
    }
}

impl TypeArena {
    /// The default verdict cap: far above any single program's working
    /// set, yet a hard ceiling on a server answering subtyping
    /// questions for unboundedly many tenants.
    pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 20;

    /// An empty arena (with the leaf types `?`, `Int`, `Bool`
    /// pre-interned).
    pub fn new() -> TypeArena {
        TypeArena::default()
    }

    /// An empty arena whose verdict tables hold at most `capacity`
    /// memoized entries (across all five relations).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a table that cannot hold a single
    /// verdict would make every query a miss *and* an eviction).
    pub fn with_memo_capacity(capacity: usize) -> TypeArena {
        let mut arena = TypeArena {
            base: None,
            base_len: 0,
            nodes: Vec::new(),
            meta: Vec::new(),
            index: HashMap::default(),
            memo: ClockMap::with_capacity(capacity),
            trees: Vec::new(),
            stats: QueryStats::default(),
            base_node_hits: 0,
        };
        // Pre-intern the leaves every program mentions, so the common
        // constructors below are pure lookups.
        arena.intern_node(TNode::Dyn);
        arena.intern_node(TNode::Base(BaseType::Int));
        arena.intern_node(TNode::Base(BaseType::Bool));
        arena
    }

    /// An overlay arena over a frozen base: every intern and every
    /// memoized query consults the (shared, read-only) base first and
    /// touches local state only for genuinely new nodes or verdicts,
    /// whose ids are offset past the base (see [`FrozenTypes`] for
    /// the id-offset contract). The leaves need no re-interning: they
    /// live in the base of every frozen arena.
    ///
    /// # Panics
    ///
    /// Panics if `memo_capacity` is zero.
    pub fn with_base(base: Arc<FrozenTypes>, memo_capacity: usize) -> TypeArena {
        let base_len = base.len();
        TypeArena {
            base: Some(base),
            base_len,
            nodes: Vec::new(),
            meta: Vec::new(),
            index: HashMap::default(),
            memo: ClockMap::with_capacity(memo_capacity),
            trees: vec![None; base_len],
            stats: QueryStats::default(),
            base_node_hits: 0,
        }
    }

    /// Freezes the arena's current state — nodes, metadata, index,
    /// and every memoized verdict — into an immutable, thread-shareable
    /// view.
    ///
    /// A flat arena builds a fresh slab. An **overlay** arena
    /// *appends* its genuinely new rows to its base's slab —
    /// O(overlay), regardless of base size — and returns a view with
    /// higher watermarks over the same storage; the result
    /// [`extends`](FrozenTypes::extends) the base by construction.
    /// Appenders over one slab serialize on the slab's writer lock;
    /// if a sibling overlay froze first, this freeze dedups against
    /// the sibling's rows (the slab stays hash-consed), and the
    /// resulting view subsumes both. For a freeze guaranteed to share
    /// nothing with its base's lineage, see
    /// [`TypeArena::freeze_flat`].
    pub fn freeze(&self) -> FrozenTypes {
        match &self.base {
            None => self.freeze_flat(),
            Some(base) => self.freeze_append(base),
        }
    }

    /// Freezes into a **fresh, independent slab**, flattening both
    /// tiers with ids preserved verbatim — the clone-on-promote
    /// semantics the append path replaced: O(base + overlay) time and
    /// space, no sharing with the base's slab. This is the oracle the
    /// append path is property-tested against, and the right tool
    /// when a snapshot must not keep its ancestor lineage's storage
    /// alive.
    pub fn freeze_flat(&self) -> FrozenTypes {
        let slab = TypeSlab::new();
        if let Some(base) = &self.base {
            for i in 0..base.nodes_mark {
                slab.append_node(base.node_at(i), base.meta_at(i));
            }
            for row in 0..base.verdicts_mark {
                let (key, verdict) = *base.slab.verdicts.get(row);
                slab.append_verdict(key, verdict);
            }
        }
        for (k, node) in self.nodes.iter().enumerate() {
            let id = slab.append_node(*node, self.meta[k]);
            debug_assert_eq!(
                id.index(),
                self.base_len + k,
                "flat freeze re-assigned an id"
            );
        }
        // Local memo keys are disjoint from the base rows copied
        // above: a base-answered query returns before it can be
        // memoized locally.
        for (&key, &verdict) in self.memo.iter() {
            debug_assert!(slab.probe_verdict(&key, usize::MAX).is_none());
            slab.append_verdict(key, verdict);
        }
        let nodes_mark = slab.nodes.len();
        let verdicts_mark = slab.verdicts.len();
        FrozenTypes {
            slab: Arc::new(slab),
            nodes_mark,
            verdicts_mark,
            appended_from: 0,
        }
    }

    /// The O(overlay) freeze: appends this overlay's local nodes and
    /// memoized verdicts to the base's slab (holding its writer lock)
    /// and returns a view whose watermarks cover the appended rows.
    ///
    /// If no sibling grew the slab first, local ids are appended
    /// verbatim (the common, promotion path — see
    /// [`FrozenTypes::contiguous_over`]). Otherwise local rows are
    /// *remapped*: children rewritten through the ids their own
    /// append produced (locals intern bottom-up, so children precede
    /// parents), nodes deduped against rows a sibling already
    /// appended, and symmetric compatibility keys re-canonicalized
    /// under the new ids.
    fn freeze_append(&self, base: &FrozenTypes) -> FrozenTypes {
        let slab = &base.slab;
        let _writer = slab
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let appended_from = slab.nodes.len();
        let mut remap: Vec<TypeId> = Vec::with_capacity(self.nodes.len());
        let map = |id: TypeId, remap: &[TypeId]| -> TypeId {
            let i = id.index();
            if i < self.base_len {
                id
            } else {
                remap[i - self.base_len]
            }
        };
        for (k, node) in self.nodes.iter().enumerate() {
            let mapped = match *node {
                TNode::Fun(a, b) => TNode::Fun(map(a, &remap), map(b, &remap)),
                leaf => leaf,
            };
            // Writer-side probe: unfiltered, so sibling-appended rows
            // above our base watermark dedup instead of duplicating.
            let id = match slab.probe_node(&mapped, usize::MAX) {
                Some(id) => id,
                // Metadata is id-free (heights, sizes, groundings), so
                // the session's copy is valid for the remapped node.
                None => slab.append_node(mapped, self.meta[k]),
            };
            remap.push(id);
        }
        for (&(rel, a, b), &verdict) in self.memo.iter() {
            let (ma, mb) = (map(a, &remap), map(b, &remap));
            // Compatibility keys are stored canonically ordered; the
            // remap can flip the order of a mixed-tier pair.
            let key = if rel == Rel::Compat && ma > mb {
                (rel, mb, ma)
            } else {
                (rel, ma, mb)
            };
            match slab.probe_verdict(&key, usize::MAX) {
                Some(prev) => debug_assert_eq!(
                    prev, verdict,
                    "conflicting verdict for {key:?}: relations are pure"
                ),
                None => slab.append_verdict(key, verdict),
            }
        }
        FrozenTypes {
            slab: Arc::clone(&base.slab),
            nodes_mark: slab.nodes.len(),
            verdicts_mark: slab.verdicts.len(),
            appended_from,
        }
    }

    /// Number of distinct type nodes interned (both tiers).
    pub fn len(&self) -> usize {
        self.base_len + self.nodes.len()
    }

    /// Number of nodes in the frozen base tier (zero for a flat
    /// arena).
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of nodes interned *locally*, past the base tier. For an
    /// overlay serving inputs the base was warmed on, this staying at
    /// zero is the base-sharing guarantee.
    pub fn local_len(&self) -> usize {
        self.nodes.len()
    }

    /// Node interns answered by the frozen base index.
    pub fn base_node_hits(&self) -> u64 {
        self.base_node_hits
    }

    /// The frozen base view this arena overlays (`None` for a flat
    /// arena). Compare a fresh [`TypeArena::freeze`] result against it
    /// with [`FrozenTypes::contiguous_over`] to learn whether the
    /// freeze appended this arena's local ids verbatim.
    pub fn base_view(&self) -> Option<&Arc<FrozenTypes>> {
        self.base.as_ref()
    }

    /// Whether nothing has been interned (never true: the leaf types
    /// are pre-interned).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters of the memoized relational queries.
    pub fn query_stats(&self) -> QueryStats {
        QueryStats {
            evictions: self.memo.evictions(),
            ..self.stats
        }
    }

    /// Number of memoized relational verdicts currently stored.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// The maximum number of memoized verdicts.
    pub fn memo_capacity(&self) -> usize {
        self.memo.capacity()
    }

    /// Interns a node whose children are already interned, returning
    /// the id of the unique stored copy — from the frozen base when
    /// the node is already there, locally otherwise.
    pub fn intern_node(&mut self, node: TNode) -> TypeId {
        if let Some(base) = &self.base {
            if let Some(id) = base.lookup_node(&node) {
                self.base_node_hits += 1;
                return id;
            }
        }
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = TypeId(
            u32::try_from(self.base_len + self.nodes.len())
                .expect("more than u32::MAX distinct types"),
        );
        let meta = self.compute_meta(&node);
        self.nodes.push(node);
        self.meta.push(meta);
        self.trees.push(None);
        self.index.insert(node, id);
        id
    }

    /// Per-node metadata across both tiers.
    fn meta_of(&self, id: TypeId) -> TypeMeta {
        let i = id.index();
        if i < self.base_len {
            self.base
                .as_ref()
                .expect("base ids imply a base")
                .meta_at(i)
        } else {
            self.meta[i - self.base_len]
        }
    }

    fn compute_meta(&self, node: &TNode) -> TypeMeta {
        match node {
            TNode::Base(b) => TypeMeta {
                height: 1,
                size: 1,
                ground_of: Some(Ground::Base(*b)),
                as_ground: Some(Ground::Base(*b)),
            },
            TNode::Dyn => TypeMeta {
                height: 1,
                size: 1,
                ground_of: None,
                as_ground: None,
            },
            TNode::Fun(a, b) => {
                let (ma, mb) = (self.meta_of(*a), self.meta_of(*b));
                TypeMeta {
                    height: ma.height.max(mb.height).saturating_add(1),
                    size: ma.size.saturating_add(mb.size).saturating_add(1),
                    ground_of: Some(Ground::Fun),
                    as_ground: if self.node(*a) == TNode::Dyn && self.node(*b) == TNode::Dyn {
                        Some(Ground::Fun)
                    } else {
                        None
                    },
                }
            }
        }
    }

    /// Interns a tree type (recursively interning function children),
    /// returning its canonical id.
    pub fn intern(&mut self, ty: &Type) -> TypeId {
        let node = match ty {
            Type::Base(b) => TNode::Base(*b),
            Type::Dyn => TNode::Dyn,
            Type::Fun(a, b) => {
                let dom = self.intern(a);
                let cod = self.intern(b);
                TNode::Fun(dom, cod)
            }
        };
        self.intern_node(node)
    }

    /// A shallow view of the interned node (children remain ids),
    /// consulting the frozen base tier for ids below the offset.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different arena and is out of
    /// bounds (ids are only meaningful within their own arena).
    pub fn node(&self, id: TypeId) -> TNode {
        let i = id.index();
        if i < self.base_len {
            self.base
                .as_ref()
                .expect("base ids imply a base")
                .node_at(i)
        } else {
            self.nodes[i - self.base_len]
        }
    }

    /// Rebuilds the tree form of an interned type (the exchange
    /// format; invariant 2: `resolve ∘ intern = id`).
    pub fn resolve(&self, id: TypeId) -> Type {
        match self.node(id) {
            TNode::Base(b) => Type::Base(b),
            TNode::Dyn => Type::Dyn,
            TNode::Fun(a, b) => Type::fun(self.resolve(a), self.resolve(b)),
        }
    }

    /// [`TypeArena::resolve`] through a per-node memo: the tree form
    /// of each distinct type is materialised once per arena lifetime
    /// (with `Rc`-shared substructure, children through the same
    /// memo), and every later call is a refcount-bump clone. This is
    /// what lets the interned front-end emit tree-typed terms without
    /// allocating a fresh `Rc` spine for every repeated annotation.
    pub fn resolve_shared(&mut self, id: TypeId) -> Type {
        if let Some(t) = &self.trees[id.index()] {
            return t.clone();
        }
        let tree = match self.node(id) {
            TNode::Base(b) => Type::Base(b),
            TNode::Dyn => Type::Dyn,
            TNode::Fun(a, b) => Type::fun(self.resolve_shared(a), self.resolve_shared(b)),
        };
        self.trees[id.index()] = Some(tree.clone());
        tree
    }

    /// The join (least upper bound with respect to precision `<:n`) of
    /// two consistent types; `None` iff the types are incompatible.
    /// Hash-consing canonicity makes the reflexive case O(1); the
    /// recursion interns only nodes the join actually introduces.
    pub fn join(&mut self, a: TypeId, b: TypeId) -> Option<TypeId> {
        if a == b {
            return Some(a);
        }
        match (self.node(a), self.node(b)) {
            (TNode::Dyn, _) | (_, TNode::Dyn) => Some(self.dyn_ty()),
            (TNode::Base(x), TNode::Base(y)) => (x == y).then_some(a),
            (TNode::Fun(a1, a2), TNode::Fun(b1, b2)) => {
                let dom = self.join(a1, b1)?;
                let cod = self.join(a2, b2)?;
                Some(self.fun(dom, cod))
            }
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Constructors.
    // ------------------------------------------------------------------

    /// The dynamic type `?`.
    pub fn dyn_ty(&mut self) -> TypeId {
        self.intern_node(TNode::Dyn)
    }

    /// A base type `ι`.
    pub fn base(&mut self, b: BaseType) -> TypeId {
        self.intern_node(TNode::Base(b))
    }

    /// The function type `dom → cod` from interned children.
    pub fn fun(&mut self, dom: TypeId, cod: TypeId) -> TypeId {
        self.intern_node(TNode::Fun(dom, cod))
    }

    /// The ground type `G` viewed as an interned type.
    pub fn ground(&mut self, g: Ground) -> TypeId {
        match g {
            Ground::Base(b) => self.base(b),
            Ground::Fun => {
                let d = self.dyn_ty();
                self.fun(d, d)
            }
        }
    }

    // ------------------------------------------------------------------
    // Per-node queries (O(1), precomputed at interning time).
    // ------------------------------------------------------------------

    /// The height of the type (precomputed; O(1)).
    pub fn height(&self, id: TypeId) -> usize {
        self.meta_of(id).height as usize
    }

    /// The number of syntax nodes of the type's tree form
    /// (precomputed; O(1)). Saturates for DAG-shaped types built via
    /// the id-level [`TypeArena::fun`] constructor.
    pub fn size(&self, id: TypeId) -> usize {
        usize::try_from(self.meta_of(id).size).unwrap_or(usize::MAX)
    }

    /// Whether the type is the dynamic type `?` (O(1)).
    pub fn is_dyn(&self, id: TypeId) -> bool {
        matches!(self.node(id), TNode::Dyn)
    }

    /// The unique ground type compatible with the type, per Lemma 1
    /// (precomputed; O(1)). `None` exactly when the type is `?`.
    pub fn ground_of(&self, id: TypeId) -> Option<Ground> {
        self.meta_of(id).ground_of
    }

    /// `Some(G)` when the type *is* the ground type `G` (precomputed;
    /// O(1)); contrast with [`TypeArena::ground_of`].
    pub fn as_ground(&self, id: TypeId) -> Option<Ground> {
        self.meta_of(id).as_ground
    }

    /// Whether the type is a ground type (O(1)).
    pub fn is_ground(&self, id: TypeId) -> bool {
        self.as_ground(id).is_some()
    }

    // ------------------------------------------------------------------
    // Memoized relational queries.
    // ------------------------------------------------------------------

    /// Compatibility `A ∼ B` (Figure 1), memoized per id pair.
    ///
    /// Hash-consing canonicity gives the reflexive case (`a == b`) for
    /// free; every other repeated query is one hash lookup.
    pub fn compatible(&mut self, a: TypeId, b: TypeId) -> bool {
        // Reflexivity and the ?-absorbing rules need no table.
        if a == b || self.is_dyn(a) || self.is_dyn(b) {
            self.stats.hits += 1;
            return true;
        }
        // Compatibility is symmetric: canonicalise the key order.
        let key = if a <= b {
            (Rel::Compat, a, b)
        } else {
            (Rel::Compat, b, a)
        };
        if let Some(r) = self.base_verdict(&key) {
            return r;
        }
        if let Some(r) = self.memo.lookup(&key) {
            self.stats.hits += 1;
            return r;
        }
        self.stats.misses += 1;
        let r = match (self.node(a), self.node(b)) {
            (TNode::Base(x), TNode::Base(y)) => x == y,
            (TNode::Fun(a1, a2), TNode::Fun(b1, b2)) => {
                self.compatible(a1, b1) && self.compatible(a2, b2)
            }
            _ => false,
        };
        self.memo.insert(key, r);
        r
    }

    /// Ordinary subtyping `A <: B` (Figure 2), memoized per id pair.
    pub fn subtype(&mut self, a: TypeId, b: TypeId) -> bool {
        self.rel(Rel::Sub, a, b)
    }

    /// Positive subtyping `A <:+ B`, memoized per id pair.
    pub fn pos_subtype(&mut self, a: TypeId, b: TypeId) -> bool {
        self.rel(Rel::Pos, a, b)
    }

    /// Negative subtyping `A <:- B`, memoized per id pair.
    pub fn neg_subtype(&mut self, a: TypeId, b: TypeId) -> bool {
        self.rel(Rel::Neg, a, b)
    }

    /// Naive subtyping `A <:n B`, memoized per id pair.
    pub fn naive_subtype(&mut self, a: TypeId, b: TypeId) -> bool {
        self.rel(Rel::Naive, a, b)
    }

    /// Whether the cast `A ⇒p B` is safe for blame label `q`
    /// (Figure 2), through the memoized positive/negative relations.
    pub fn cast_safe_for(&mut self, a: TypeId, p: Label, b: TypeId, q: Label) -> bool {
        if p.is_bullet() {
            return true;
        }
        if p != q && p.complement() != q {
            return true;
        }
        if q == p && self.pos_subtype(a, b) {
            return true;
        }
        q == p.complement() && self.neg_subtype(a, b)
    }

    /// A verdict answered by the frozen base tier, if there is one
    /// (counting it as a hit).
    fn base_verdict(&mut self, key: &(Rel, TypeId, TypeId)) -> Option<bool> {
        let r = self.base.as_ref()?.lookup_verdict(key)?;
        self.stats.hits += 1;
        self.stats.base_hits += 1;
        Some(r)
    }

    fn rel(&mut self, rel: Rel, a: TypeId, b: TypeId) -> bool {
        // All four relations are reflexive; O(1) id equality makes
        // that the free fast path.
        if a == b {
            self.stats.hits += 1;
            return true;
        }
        if let Some(r) = self.base_verdict(&(rel, a, b)) {
            return r;
        }
        if let Some(r) = self.memo.lookup(&(rel, a, b)) {
            self.stats.hits += 1;
            return r;
        }
        self.stats.misses += 1;
        let r = self.rel_uncached(rel, a, b);
        self.memo.insert((rel, a, b), r);
        r
    }

    /// The Figure-2 rules, transcribed onto nodes. Each relation's
    /// structure mirrors its tree implementation in [`crate::subtype`]
    /// exactly (agreement is validated by property test); recursive
    /// premises go back through [`TypeArena::rel`] so inner pairs
    /// memoize too.
    fn rel_uncached(&mut self, rel: Rel, a: TypeId, b: TypeId) -> bool {
        let (na, nb) = (self.node(a), self.node(b));
        match rel {
            Rel::Compat => unreachable!("compatibility goes through TypeArena::compatible"),
            Rel::Sub => match (na, nb) {
                (TNode::Base(x), TNode::Base(y)) => x == y,
                (TNode::Fun(a1, a2), TNode::Fun(b1, b2)) => {
                    self.rel(Rel::Sub, b1, a1) && self.rel(Rel::Sub, a2, b2)
                }
                (TNode::Dyn, TNode::Dyn) => true,
                (_, TNode::Dyn) => match self.ground_of(a) {
                    Some(g) => {
                        let gid = self.ground(g);
                        self.rel(Rel::Sub, a, gid)
                    }
                    None => false,
                },
                _ => false,
            },
            Rel::Pos => match (na, nb) {
                (_, TNode::Dyn) => true,
                (TNode::Base(x), TNode::Base(y)) => x == y,
                (TNode::Fun(a1, a2), TNode::Fun(b1, b2)) => {
                    self.rel(Rel::Neg, b1, a1) && self.rel(Rel::Pos, a2, b2)
                }
                _ => false,
            },
            Rel::Neg => match (na, nb) {
                (TNode::Dyn, _) => true,
                (TNode::Base(x), TNode::Base(y)) => x == y,
                (TNode::Fun(a1, a2), TNode::Fun(b1, b2)) => {
                    self.rel(Rel::Pos, b1, a1) && self.rel(Rel::Neg, a2, b2)
                }
                (_, TNode::Dyn) => match self.ground_of(a) {
                    Some(g) => {
                        let gid = self.ground(g);
                        self.rel(Rel::Neg, a, gid)
                    }
                    None => unreachable!("Dyn handled above"),
                },
                _ => false,
            },
            Rel::Naive => match (na, nb) {
                (_, TNode::Dyn) => true,
                (TNode::Base(x), TNode::Base(y)) => x == y,
                (TNode::Fun(a1, a2), TNode::Fun(b1, b2)) => {
                    self.rel(Rel::Naive, a1, b1) && self.rel(Rel::Naive, a2, b2)
                }
                _ => false,
            },
        }
    }

    /// Renders an interned type in the paper grammar.
    pub fn display(&self, id: TypeId) -> String {
        self.resolve(id).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtype;
    use crate::subtype::sample_types;

    #[test]
    fn interning_is_canonical() {
        let mut arena = TypeArena::new();
        for t in sample_types(2) {
            let a = arena.intern(&t);
            let b = arena.intern(&t);
            assert_eq!(a, b, "same tree must intern to same id: {t}");
            assert_eq!(arena.resolve(a), t, "round trip of {t}");
        }
        let samples = sample_types(1);
        let ids: Vec<_> = samples.iter().map(|t| arena.intern(t)).collect();
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                assert_eq!(a == b, i == j, "{} vs {}", samples[i], samples[j]);
            }
        }
    }

    #[test]
    fn structural_sharing_dedups_children() {
        let mut arena = TypeArena::new();
        let n = arena.len();
        arena.intern(&Type::fun(Type::INT, Type::INT));
        // Int was pre-interned; only the Fun node is new.
        assert_eq!(arena.len(), n + 1);
    }

    #[test]
    fn metadata_matches_tree_queries() {
        let mut arena = TypeArena::new();
        for t in sample_types(2) {
            let id = arena.intern(&t);
            assert_eq!(arena.height(id), t.height(), "height of {t}");
            assert_eq!(arena.size(id), t.size(), "size of {t}");
            assert_eq!(arena.ground_of(id), t.ground_of(), "ground_of {t}");
            assert_eq!(arena.as_ground(id), t.as_ground(), "as_ground {t}");
            assert_eq!(arena.is_dyn(id), t.is_dyn(), "is_dyn {t}");
        }
    }

    #[test]
    fn memoized_relations_agree_with_tree_relations() {
        let mut arena = TypeArena::new();
        let u = sample_types(1);
        for a in &u {
            for b in &u {
                let (ia, ib) = (arena.intern(a), arena.intern(b));
                assert_eq!(arena.compatible(ia, ib), a.compatible(b), "{a} ∼ {b}");
                assert_eq!(arena.subtype(ia, ib), subtype::subtype(a, b), "{a} <: {b}");
                assert_eq!(
                    arena.pos_subtype(ia, ib),
                    subtype::pos_subtype(a, b),
                    "{a} <:+ {b}"
                );
                assert_eq!(
                    arena.neg_subtype(ia, ib),
                    subtype::neg_subtype(a, b),
                    "{a} <:- {b}"
                );
                assert_eq!(
                    arena.naive_subtype(ia, ib),
                    subtype::naive_subtype(a, b),
                    "{a} <:n {b}"
                );
            }
        }
    }

    #[test]
    fn repeated_queries_hit_the_memo_table() {
        let mut arena = TypeArena::new();
        let a = arena.intern(&Type::fun(Type::INT, Type::DYN));
        let b = arena.intern(&Type::fun(Type::INT, Type::BOOL));
        assert!(arena.compatible(a, b));
        let misses = arena.query_stats().misses;
        // Same question (either order: compatibility is symmetric) is
        // answered from the table.
        assert!(arena.compatible(b, a));
        assert_eq!(arena.query_stats().misses, misses);
        assert!(arena.query_stats().hits >= 1);
        // Subtyping memoizes per-direction.
        arena.subtype(a, b);
        let misses = arena.query_stats().misses;
        arena.subtype(a, b);
        assert_eq!(arena.query_stats().misses, misses);
    }

    #[test]
    fn cast_safety_agrees_with_tree_implementation() {
        let mut arena = TypeArena::new();
        let u = sample_types(1);
        let labels = [Label::new(0), Label::new(0).complement(), Label::new(1)];
        for a in &u {
            for b in &u {
                let (ia, ib) = (arena.intern(a), arena.intern(b));
                for p in labels {
                    for q in labels {
                        assert_eq!(
                            arena.cast_safe_for(ia, p, ib, q),
                            subtype::cast_safe_for(a, p, b, q),
                            "safety of {a} ⇒{p} {b} for {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn display_matches_tree_display() {
        let mut arena = TypeArena::new();
        let t = Type::fun(Type::fun(Type::DYN, Type::INT), Type::BOOL);
        let id = arena.intern(&t);
        assert_eq!(arena.display(id), t.to_string());
    }

    /// A family of distinct function types (each asks a fresh verdict
    /// question against `Int`).
    fn distinct_funs(arena: &mut TypeArena, n: usize) -> Vec<TypeId> {
        let mut ty = Type::fun(Type::INT, Type::INT);
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(arena.intern(&ty));
            ty = Type::fun(ty, Type::INT);
        }
        out
    }

    #[test]
    fn second_chance_eviction_caps_the_verdict_table() {
        let mut arena = TypeArena::with_memo_capacity(4);
        assert_eq!(arena.memo_capacity(), 4);
        let int = arena.base(BaseType::Int);
        for id in distinct_funs(&mut arena, 16) {
            arena.compatible(id, int);
            arena.naive_subtype(id, int);
        }
        assert!(arena.memo_len() <= 4, "table grew to {}", arena.memo_len());
        assert!(
            arena.query_stats().evictions > 0,
            "filling past capacity must evict: {:?}",
            arena.query_stats()
        );
    }

    #[test]
    fn evicted_verdicts_recompute_to_the_same_answer() {
        let mut arena = TypeArena::with_memo_capacity(2);
        let dyn_fun = arena.intern(&Type::dyn_fun());
        let ii = arena.intern(&Type::fun(Type::INT, Type::INT));
        let first = arena.subtype(ii, dyn_fun);
        // Flush the table with unrelated questions…
        let int = arena.base(BaseType::Int);
        for id in distinct_funs(&mut arena, 12) {
            arena.pos_subtype(id, int);
        }
        assert!(arena.query_stats().evictions > 0);
        // …then the evicted verdict recomputes identically.
        assert_eq!(arena.subtype(ii, dyn_fun), first);
    }

    #[test]
    fn hot_verdicts_mostly_survive_the_clock_sweep() {
        let mut arena = TypeArena::with_memo_capacity(8);
        let int = arena.base(BaseType::Int);
        let hot = arena.intern(&Type::fun(Type::INT, Type::BOOL));
        arena.naive_subtype(hot, int);
        let misses_after_hot = arena.query_stats().misses;
        let rounds = 16usize;
        for id in distinct_funs(&mut arena, rounds) {
            // Touch the hot verdict between insertions: its reference
            // bit keeps earning it second chances.
            arena.naive_subtype(hot, int);
            arena.naive_subtype(id, int);
        }
        let stats = arena.query_stats();
        // Every cold question is a miss; of the hot touches, at most a
        // couple may fall to the sweep's wrap.
        let hot_misses = stats.misses - misses_after_hot - rounds as u64;
        assert!(
            hot_misses <= rounds as u64 / 4,
            "hot verdict recomputed {hot_misses} times in {rounds} touches: {stats:?}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_memo_capacity_is_rejected() {
        TypeArena::with_memo_capacity(0);
    }

    #[test]
    fn resolve_shared_matches_resolve() {
        let mut arena = TypeArena::new();
        for t in sample_types(2) {
            let id = arena.intern(&t);
            assert_eq!(arena.resolve_shared(id), t, "first call of {t}");
            assert_eq!(arena.resolve_shared(id), t, "memoized call of {t}");
            assert_eq!(arena.resolve(id), arena.resolve_shared(id));
        }
    }

    #[test]
    fn resolve_shared_reuses_the_same_allocation() {
        let mut arena = TypeArena::new();
        let id = arena.intern(&Type::fun(Type::INT, Type::DYN));
        let first = arena.resolve_shared(id);
        let second = arena.resolve_shared(id);
        // Same Rc spine, not merely structurally equal.
        match (&first, &second) {
            (Type::Fun(a, _), Type::Fun(b, _)) => {
                assert!(std::rc::Rc::ptr_eq(a, b), "children must be shared");
            }
            _ => unreachable!("interned a Fun"),
        }
    }

    /// The tree-level join (precision lub), as specified by the
    /// gradual elaborator — the oracle for [`TypeArena::join`].
    fn tree_join(a: &Type, b: &Type) -> Option<Type> {
        match (a, b) {
            (Type::Dyn, _) | (_, Type::Dyn) => Some(Type::Dyn),
            (Type::Base(x), Type::Base(y)) => (x == y).then(|| a.clone()),
            (Type::Fun(a1, a2), Type::Fun(b1, b2)) => {
                Some(Type::fun(tree_join(a1, b1)?, tree_join(a2, b2)?))
            }
            _ => None,
        }
    }

    fn _frozen_types_is_send_sync(f: FrozenTypes) -> impl Send + Sync {
        f
    }

    #[test]
    fn overlay_answers_warm_inputs_entirely_from_the_base() {
        // Warm an arena (nodes + verdicts), freeze it, and layer an
        // overlay: re-interning the same types finds every node in
        // the base (zero local nodes, same ids), and re-asking the
        // same relational questions computes zero new verdicts.
        let mut warm = TypeArena::new();
        let samples = sample_types(2);
        let warm_ids: Vec<_> = samples.iter().map(|t| warm.intern(t)).collect();
        for a in &warm_ids {
            for b in &warm_ids {
                warm.compatible(*a, *b);
                warm.subtype(*a, *b);
            }
        }
        let base = Arc::new(warm.freeze());
        assert_eq!(base.len(), warm.len());
        assert!(base.verdicts_len() > 0);

        let mut overlay = TypeArena::with_base(base, 1 << 10);
        assert_eq!(overlay.base_len(), warm.len());
        for (t, id) in samples.iter().zip(&warm_ids) {
            assert_eq!(
                overlay.intern(t),
                *id,
                "base ids must mean the same type in the overlay: {t}"
            );
            assert_eq!(overlay.resolve(*id), *t, "round trip through the base");
        }
        assert_eq!(overlay.local_len(), 0, "warm inputs must intern nothing");
        assert!(overlay.base_node_hits() > 0);
        let ids: Vec<_> = samples.iter().map(|t| overlay.intern(t)).collect();
        for a in &ids {
            for b in &ids {
                overlay.compatible(*a, *b);
                overlay.subtype(*a, *b);
            }
        }
        let stats = overlay.query_stats();
        assert_eq!(
            stats.misses, 0,
            "warm questions must be answered by the frozen tier: {stats:?}"
        );
        assert!(stats.base_hits > 0);
    }

    #[test]
    fn overlay_interns_new_nodes_past_the_base() {
        let mut warm = TypeArena::new();
        warm.intern(&Type::fun(Type::INT, Type::INT));
        let base = Arc::new(warm.freeze());
        let base_len = base.len();
        let mut overlay = TypeArena::with_base(base, 1 << 10);
        let novel = Type::fun(Type::BOOL, Type::fun(Type::INT, Type::DYN));
        let id = overlay.intern(&novel);
        assert!(
            id.index() >= base_len,
            "local ids must be offset past the base"
        );
        assert_eq!(overlay.local_len(), 2, "two genuinely new Fun nodes");
        assert_eq!(overlay.resolve(id), novel, "mixed-tier round trip");
        assert_eq!(overlay.intern(&novel), id, "local canonicity");
        assert_eq!(overlay.height(id), novel.height());
        assert_eq!(overlay.size(id), novel.size());
        // resolve_shared spans both tiers.
        assert_eq!(overlay.resolve_shared(id), novel);
    }

    #[test]
    fn overlay_relations_agree_with_flat_relations() {
        // Queries mixing base and local operands must equal the flat
        // arena's answers (and the tree oracles, by transitivity with
        // the existing agreement test).
        let mut warm = TypeArena::new();
        for t in sample_types(1) {
            warm.intern(&t);
        }
        let base = Arc::new(warm.freeze());
        let mut overlay = TypeArena::with_base(base, 1 << 10);
        let mut flat = TypeArena::new();
        let u = sample_types(2);
        for a in &u {
            for b in &u {
                let (oa, ob) = (overlay.intern(a), overlay.intern(b));
                let (fa, fb) = (flat.intern(a), flat.intern(b));
                assert_eq!(
                    overlay.compatible(oa, ob),
                    flat.compatible(fa, fb),
                    "{a} ∼ {b}"
                );
                assert_eq!(overlay.subtype(oa, ob), flat.subtype(fa, fb), "{a} <: {b}");
                assert_eq!(
                    overlay.pos_subtype(oa, ob),
                    flat.pos_subtype(fa, fb),
                    "{a} <:+ {b}"
                );
                assert_eq!(
                    overlay.neg_subtype(oa, ob),
                    flat.neg_subtype(fa, fb),
                    "{a} <:- {b}"
                );
                assert_eq!(
                    overlay.join(oa, ob).map(|id| overlay.resolve(id)),
                    flat.join(fa, fb).map(|id| flat.resolve(id)),
                    "{a} ⊔ {b}"
                );
            }
        }
    }

    #[test]
    fn freezing_an_overlay_flattens_both_tiers() {
        let mut warm = TypeArena::new();
        let ii = warm.intern(&Type::fun(Type::INT, Type::INT));
        let base = Arc::new(warm.freeze());
        let mut overlay = TypeArena::with_base(base, 1 << 10);
        let novel = Type::fun(Type::BOOL, Type::BOOL);
        let novel_id = overlay.intern(&novel);
        overlay.subtype(ii, novel_id);

        let refrozen = Arc::new(overlay.freeze());
        assert_eq!(refrozen.len(), overlay.len());
        let mut second = TypeArena::with_base(refrozen, 1 << 10);
        // Both the original base's nodes and the overlay's local
        // nodes are base nodes of the re-frozen snapshot.
        assert_eq!(second.intern(&Type::fun(Type::INT, Type::INT)), ii);
        assert_eq!(second.intern(&novel), novel_id);
        assert_eq!(second.local_len(), 0);
        // The overlay's memoized verdict froze too.
        second.subtype(ii, novel_id);
        assert!(second.query_stats().base_hits > 0);
        assert_eq!(second.query_stats().misses, 0);
    }

    #[test]
    fn refreezing_an_overlay_extends_its_base() {
        let mut warm = TypeArena::new();
        warm.intern(&Type::fun(Type::INT, Type::INT));
        let base = Arc::new(warm.freeze());
        let mut overlay = TypeArena::with_base(Arc::clone(&base), 1 << 10);
        overlay.intern(&Type::fun(Type::BOOL, Type::BOOL));
        let refrozen = overlay.freeze();
        // Appending preserves base ids verbatim: the new snapshot
        // extends the old (and itself), which is what lets a pool
        // hot-swap bases without invalidating outstanding ids.
        assert!(refrozen.extends(&base));
        assert!(refrozen.extends(&refrozen));
        assert!(!base.extends(&refrozen), "extension is strictly larger");
        // No sibling froze first, so the overlay's local ids were
        // appended verbatim.
        assert!(refrozen.contiguous_over(&base));
        // A sibling freezing *after* refrozen appends onto the same
        // slab: freezes over one base serialize into one id space, so
        // the later view subsumes the earlier one (but not vice
        // versa) — and it is *not* contiguous over the base, because
        // refrozen's rows landed first (its local ids were remapped).
        let mut sibling = TypeArena::with_base(Arc::clone(&base), 1 << 10);
        sibling.intern(&Type::fun(Type::DYN, Type::BOOL));
        let other = sibling.freeze();
        assert!(other.extends(&base));
        assert!(other.extends(&refrozen), "later sibling subsumes earlier");
        assert!(!refrozen.extends(&other));
        assert!(!other.contiguous_over(&base));
        // An independent lineage (fresh flat freeze) never extends.
        let detached = overlay.freeze_flat();
        assert_eq!(detached.len(), overlay.len());
        assert!(!detached.extends(&base), "different slab, no extension");
        assert!(!detached.contiguous_over(&base));
    }

    #[test]
    fn sibling_overlays_diverge_independently() {
        // Two overlays over one base each mint their own local ids;
        // neither sees the other's nodes, and base ids stay shared.
        let mut warm = TypeArena::new();
        let shared = warm.intern(&Type::fun(Type::INT, Type::INT));
        let base = Arc::new(warm.freeze());
        let mut left = TypeArena::with_base(Arc::clone(&base), 1 << 10);
        let mut right = TypeArena::with_base(base, 1 << 10);
        let l = left.intern(&Type::fun(Type::BOOL, Type::BOOL));
        let r = right.intern(&Type::fun(Type::DYN, Type::BOOL));
        // The numeric ids may coincide (both offset from the same
        // base) but denote each overlay's own node.
        assert_eq!(left.resolve(l), Type::fun(Type::BOOL, Type::BOOL));
        assert_eq!(right.resolve(r), Type::fun(Type::DYN, Type::BOOL));
        assert_eq!(left.intern(&Type::fun(Type::INT, Type::INT)), shared);
        assert_eq!(right.intern(&Type::fun(Type::INT, Type::INT)), shared);
    }

    #[test]
    fn join_agrees_with_the_tree_join() {
        let mut arena = TypeArena::new();
        let u = sample_types(2);
        for a in &u {
            for b in &u {
                let (ia, ib) = (arena.intern(a), arena.intern(b));
                let got = arena.join(ia, ib).map(|id| arena.resolve(id));
                assert_eq!(got, tree_join(a, b), "{a} ⊔ {b}");
            }
        }
    }
}
