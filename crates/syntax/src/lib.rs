//! Shared syntax for the blame/coercion calculi of Siek, Thiemann, and
//! Wadler, *Blame and Coercion: Together Again for the First Time*
//! (PLDI 2015).
//!
//! This crate provides everything that is common to the three calculi
//! λB (blame calculus), λC (coercion calculus), and λS (space-efficient
//! coercion calculus):
//!
//! * [`Type`] — types `A, B, C ::= ι | A → B | ?` with base types
//!   instantiated as `Int` and `Bool` ([`BaseType`]);
//! * [`Ground`] — ground types `G, H ::= ι | ? → ?`;
//! * compatibility `A ∼ B` ([`Type::compatible`]) and the grounding
//!   lemma ([`Type::ground_of`], Lemma 1 of the paper);
//! * [`Label`] — blame labels `p, q` with involutive complement `p̄`;
//! * [`Constant`] and [`Op`] — constants `k` and total operators `op`
//!   with their meaning function `[[op]]`;
//! * the four subtyping relations of Figure 2 ([`subtype`](mod@subtype));
//! * a hash-consing [`TypeArena`] interning types behind `Copy`
//!   [`TypeId`] handles, with O(1) equality and memoized
//!   compatibility/subtyping queries ([`intern`]);
//! * pointed types and the type meet `A & B` used by the Fundamental
//!   Property of Casts ([`pointed`]);
//! * the dynamically-typed λ-calculus that is embedded into λB by `⌈·⌉`
//!   ([`untyped`]).
//!
//! # Examples
//!
//! ```
//! use bc_syntax::{Type, Ground};
//!
//! let a = Type::fun(Type::INT, Type::DYN);
//! assert!(a.compatible(&Type::DYN));
//! // Every non-dynamic type is compatible with a unique ground type.
//! assert_eq!(a.ground_of(), Some(Ground::Fun));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod constant;
pub mod fresh;
pub mod fxhash;
pub mod intern;
pub mod label;
pub mod op;
pub mod pointed;
pub mod slab;
pub mod subtype;
pub mod types;
pub mod untyped;

pub use clock::ClockMap;
pub use constant::Constant;
pub use fresh::NameSupply;
pub use fxhash::{FxBuildHasher, FxHasher};
pub use intern::{FrozenTypes, TNode, TypeArena, TypeId};
pub use label::{Label, LabelSupply};
pub use op::Op;
pub use pointed::{meet, PointedType};
pub use slab::{AppendLog, AtomicIndex};
pub use subtype::{naive_subtype, neg_subtype, pos_subtype, subtype};
pub use types::{BaseType, Ground, Type};

/// Variable names.
///
/// Names are reference-counted strings so that terms can be cloned
/// cheaply during substitution-based evaluation. They are atomically
/// counted (`Arc`, not `Rc`) so that the *compiled* term IRs — which
/// carry only `Name`s and `Copy` ids — are `Send` and can travel to
/// pool workers without re-parsing.
pub type Name = std::sync::Arc<str>;
