//! Types `A, B, C ::= ι | A → B | ?` and ground types `G, H ::= ι | ? → ?`
//! (Figure 1 of the paper), together with compatibility `A ∼ B` and the
//! grounding lemma (Lemma 1).

use std::fmt;
use std::rc::Rc;

/// Base types `ι`.
///
/// The paper leaves base types abstract; we instantiate them with
/// integers and booleans, which is enough to express every example in
/// the paper (including the motivating even/odd workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BaseType {
    /// Machine integers (`i64` values).
    Int,
    /// Booleans.
    Bool,
}

impl BaseType {
    /// All base types, in a fixed order (useful for exhaustive tests).
    pub const ALL: [BaseType; 2] = [BaseType::Int, BaseType::Bool];

    /// The type `ι` viewed as a [`Type`].
    pub fn ty(self) -> Type {
        Type::Base(self)
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Int => f.write_str("Int"),
            BaseType::Bool => f.write_str("Bool"),
        }
    }
}

/// Types `A, B, C ::= ι | A → B | ?`.
///
/// Function types share their components via [`Rc`], so cloning a type
/// is cheap; types are immutable once built.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A base type `ι`.
    Base(BaseType),
    /// The dynamic type `?`.
    Dyn,
    /// A function type `A → B`.
    Fun(Rc<Type>, Rc<Type>),
}

impl Type {
    /// The type `Int`.
    pub const INT: Type = Type::Base(BaseType::Int);
    /// The type `Bool`.
    pub const BOOL: Type = Type::Base(BaseType::Bool);
    /// The dynamic type `?`.
    pub const DYN: Type = Type::Dyn;

    /// Builds the function type `dom → cod`.
    pub fn fun(dom: Type, cod: Type) -> Type {
        Type::Fun(Rc::new(dom), Rc::new(cod))
    }

    /// The ground function type `? → ?`.
    pub fn dyn_fun() -> Type {
        Type::fun(Type::Dyn, Type::Dyn)
    }

    /// Compatibility `A ∼ B` (Figure 1).
    ///
    /// Two types are compatible if either is `?`, they are the same
    /// base type, or they are function types with compatible domains
    /// and ranges. Compatibility is reflexive and symmetric but *not*
    /// transitive (`Int ∼ ?` and `? ∼ Bool` but `Int ≁ Bool`).
    ///
    /// ```
    /// use bc_syntax::Type;
    /// assert!(Type::INT.compatible(&Type::DYN));
    /// assert!(!Type::INT.compatible(&Type::BOOL));
    /// ```
    pub fn compatible(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Dyn, _) | (_, Type::Dyn) => true,
            (Type::Base(a), Type::Base(b)) => a == b,
            (Type::Fun(a1, a2), Type::Fun(b1, b2)) => a1.compatible(b1) && a2.compatible(b2),
            _ => false,
        }
    }

    /// The unique ground type compatible with `self`, per Lemma 1
    /// (Grounding): if `A ≠ ?` there is a unique `G` with `A ∼ G`.
    ///
    /// Returns `None` exactly when `self` is `?`.
    pub fn ground_of(&self) -> Option<Ground> {
        match self {
            Type::Base(b) => Some(Ground::Base(*b)),
            Type::Fun(_, _) => Some(Ground::Fun),
            Type::Dyn => None,
        }
    }

    /// Returns `Some(G)` when `self` *is* the ground type `G` (a base
    /// type, or exactly `? → ?`), and `None` otherwise.
    ///
    /// Contrast with [`Type::ground_of`]: `Int → Int` has
    /// `ground_of() == Some(Ground::Fun)` but is not itself ground.
    pub fn as_ground(&self) -> Option<Ground> {
        match self {
            Type::Base(b) => Some(Ground::Base(*b)),
            Type::Fun(a, b) if **a == Type::Dyn && **b == Type::Dyn => Some(Ground::Fun),
            _ => None,
        }
    }

    /// Whether `self` is the dynamic type `?`.
    pub fn is_dyn(&self) -> bool {
        matches!(self, Type::Dyn)
    }

    /// Whether `self` is a ground type.
    pub fn is_ground(&self) -> bool {
        self.as_ground().is_some()
    }

    /// The height of a type: `1` for `ι` and `?`, and one more than the
    /// taller component for `A → B`. Used by the space bounds of §4.
    pub fn height(&self) -> usize {
        match self {
            Type::Base(_) | Type::Dyn => 1,
            Type::Fun(a, b) => 1 + a.height().max(b.height()),
        }
    }

    /// The number of syntax nodes in the type.
    pub fn size(&self) -> usize {
        match self {
            Type::Base(_) | Type::Dyn => 1,
            Type::Fun(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl From<BaseType> for Type {
    fn from(b: BaseType) -> Type {
        Type::Base(b)
    }
}

impl From<Ground> for Type {
    fn from(g: Ground) -> Type {
        g.ty()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Base(b) => write!(f, "{b}"),
            Type::Dyn => f.write_str("?"),
            Type::Fun(a, b) => {
                // Parenthesise a function domain; `→` is right associative.
                match **a {
                    Type::Fun(_, _) => write!(f, "({a}) -> {b}"),
                    _ => write!(f, "{a} -> {b}"),
                }
            }
        }
    }
}

/// Ground types `G, H ::= ι | ? → ?`.
///
/// Each value of dynamic type belongs to exactly one ground type; the
/// dynamic type satisfies `? ≅ ι + (? → ?)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ground {
    /// The ground base type `ι`.
    Base(BaseType),
    /// The ground function type `? → ?`.
    Fun,
}

impl Ground {
    /// All ground types, in a fixed order (useful for exhaustive tests).
    pub const ALL: [Ground; 3] = [
        Ground::Base(BaseType::Int),
        Ground::Base(BaseType::Bool),
        Ground::Fun,
    ];

    /// The ground type viewed as a [`Type`].
    pub fn ty(self) -> Type {
        match self {
            Ground::Base(b) => Type::Base(b),
            Ground::Fun => Type::dyn_fun(),
        }
    }
}

impl fmt::Display for Ground {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ground::Base(b) => write!(f, "{b}"),
            Ground::Fun => f.write_str("? -> ?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_examples() {
        let a = Type::fun(Type::INT, Type::BOOL);
        assert!(a.compatible(&a));
        assert!(a.compatible(&Type::DYN));
        assert!(a.compatible(&Type::dyn_fun()));
        assert!(!a.compatible(&Type::INT));
        assert!(!Type::INT.compatible(&Type::BOOL));
    }

    #[test]
    fn grounding_lemma_part_1() {
        // If A ≠ ?, there is a unique G such that A ∼ G.
        let samples = [
            Type::INT,
            Type::BOOL,
            Type::dyn_fun(),
            Type::fun(Type::INT, Type::DYN),
            Type::fun(Type::dyn_fun(), Type::BOOL),
        ];
        for a in &samples {
            let g = a.ground_of().expect("non-dynamic type must ground");
            assert!(a.compatible(&g.ty()), "{a} ∼ {g}");
            // Uniqueness: no other ground is compatible.
            for h in Ground::ALL {
                if h != g {
                    assert!(!a.compatible(&h.ty()), "{a} must not be ∼ {h}");
                }
            }
        }
        assert_eq!(Type::DYN.ground_of(), None);
    }

    #[test]
    fn grounding_lemma_part_2() {
        // G ∼ H iff G = H.
        for g in Ground::ALL {
            for h in Ground::ALL {
                assert_eq!(g.ty().compatible(&h.ty()), g == h);
            }
        }
    }

    #[test]
    fn as_ground_is_strict() {
        assert_eq!(Type::INT.as_ground(), Some(Ground::Base(BaseType::Int)));
        assert_eq!(Type::dyn_fun().as_ground(), Some(Ground::Fun));
        assert_eq!(Type::fun(Type::INT, Type::DYN).as_ground(), None);
        assert_eq!(Type::DYN.as_ground(), None);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Type::fun(Type::INT, Type::BOOL).to_string(), "Int -> Bool");
        assert_eq!(
            Type::fun(Type::fun(Type::DYN, Type::DYN), Type::INT).to_string(),
            "(? -> ?) -> Int"
        );
        assert_eq!(Ground::Fun.to_string(), "? -> ?");
    }

    #[test]
    fn height_and_size() {
        assert_eq!(Type::INT.height(), 1);
        let t = Type::fun(Type::fun(Type::INT, Type::INT), Type::DYN);
        assert_eq!(t.height(), 3);
        assert_eq!(t.size(), 5);
    }
}
