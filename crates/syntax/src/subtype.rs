//! The four subtyping relations of Figure 2.
//!
//! Each relation serves a different purpose:
//!
//! * [`subtype`] (`A <: B`) characterises when a cast `A ⇒ B` never
//!   yields blame;
//! * [`pos_subtype`] (`A <:+ B`) when it cannot yield *positive* blame;
//! * [`neg_subtype`] (`A <:- B`) when it cannot yield *negative* blame;
//! * [`naive_subtype`] (`A <:n B`) when `A` is *more precise* than `B`.
//!
//! The first three are characterised by contravariance in function
//! domains; naive subtyping is covariant in both positions. They are
//! related by the Tangram lemma (Lemma 4):
//!
//! 1. `A <: B` iff `A <:+ B` and `A <:- B`;
//! 2. `A <:n B` iff `A <:+ B` and `B <:- A`.
//!
//! All four relations are reflexive and transitive; `<:`, `<:+`, and
//! `<:n` are antisymmetric.

use crate::types::Type;

/// Ordinary subtyping `A <: B`: a cast from `A` to `B` never yields
/// blame (neither positive nor negative).
///
/// ```
/// use bc_syntax::{subtype, Type};
/// // An injection from ground type never yields blame.
/// assert!(subtype(&Type::dyn_fun(), &Type::DYN));
/// // Int → Int ⇒ ? can later blame its domain negatively.
/// assert!(!subtype(&Type::fun(Type::INT, Type::INT), &Type::DYN));
/// ```
pub fn subtype(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Base(x), Type::Base(y)) => x == y,
        (Type::Fun(a1, a2), Type::Fun(b1, b2)) => subtype(b1, a1) && subtype(a2, b2),
        (Type::Dyn, Type::Dyn) => true,
        // A <: ?  if  A <: G for some ground G. For A ≠ ?, the only
        // candidate is the unique ground type of A (Lemma 1).
        (a, Type::Dyn) => match a.ground_of() {
            Some(g) => subtype(a, &g.ty()),
            None => false,
        },
        _ => false,
    }
}

/// Positive subtyping `A <:+ B`: a cast from `A` to `B` never yields
/// positive blame (never blames its own label `p`).
pub fn pos_subtype(a: &Type, b: &Type) -> bool {
    match (a, b) {
        // A <:+ ? for every A.
        (_, Type::Dyn) => true,
        (Type::Base(x), Type::Base(y)) => x == y,
        (Type::Fun(a1, a2), Type::Fun(b1, b2)) => neg_subtype(b1, a1) && pos_subtype(a2, b2),
        _ => false,
    }
}

/// Negative subtyping `A <:- B`: a cast from `A` to `B` never yields
/// negative blame (never blames the complement `p̄`).
pub fn neg_subtype(a: &Type, b: &Type) -> bool {
    match (a, b) {
        // ? <:- B for every B.
        (Type::Dyn, _) => true,
        (Type::Base(x), Type::Base(y)) => x == y,
        (Type::Fun(a1, a2), Type::Fun(b1, b2)) => pos_subtype(b1, a1) && neg_subtype(a2, b2),
        // A <:- ?  if  A <:- G for some ground G.
        (a, Type::Dyn) => match a.ground_of() {
            Some(g) => neg_subtype(a, &g.ty()),
            None => unreachable!("Dyn handled above"),
        },
        _ => false,
    }
}

/// Naive subtyping `A <:n B`: type `A` is more precise than type `B`.
/// Covariant in both function positions; `?` is the least precise type.
pub fn naive_subtype(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (_, Type::Dyn) => true,
        (Type::Base(x), Type::Base(y)) => x == y,
        (Type::Fun(a1, a2), Type::Fun(b1, b2)) => naive_subtype(a1, b1) && naive_subtype(a2, b2),
        _ => false,
    }
}

/// Whether the cast `A ⇒p B` is *safe for* blame label `q`
/// (`(A ⇒p B) safe q`, Figure 2): evaluating the cast can never
/// allocate blame to `q`.
///
/// The three rules: if `A <:+ B` the cast never allocates positive
/// blame (safe for `p`); if `A <:- B` it never allocates negative blame
/// (safe for `p̄`); and a cast labelled `p` only ever blames `p` or
/// `p̄`, so it is safe for any unrelated `q`.
///
/// The bullet label `•` decorates casts that cannot blame at all, so a
/// bullet cast is safe for every `q`.
pub fn cast_safe_for(a: &Type, p: crate::label::Label, b: &Type, q: crate::label::Label) -> bool {
    if p.is_bullet() {
        return true;
    }
    if p != q && p.complement() != q {
        return true;
    }
    if q == p && pos_subtype(a, b) {
        return true;
    }
    if q == p.complement() && neg_subtype(a, b) {
        return true;
    }
    false
}

/// Enumerates representative types up to a small height; used by
/// exhaustive tests of relational properties.
#[doc(hidden)]
pub fn sample_types(depth: usize) -> Vec<Type> {
    let mut out = vec![Type::INT, Type::BOOL, Type::DYN];
    let mut prev = out.clone();
    for _ in 0..depth {
        let mut next = Vec::new();
        for a in &prev {
            for b in &prev {
                next.push(Type::fun(a.clone(), b.clone()));
            }
        }
        out.extend(next.iter().cloned());
        prev = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ground;

    fn universe() -> Vec<Type> {
        sample_types(1)
    }

    #[test]
    fn reflexive() {
        for a in universe() {
            assert!(subtype(&a, &a), "{a} <: {a}");
            assert!(pos_subtype(&a, &a), "{a} <:+ {a}");
            assert!(neg_subtype(&a, &a), "{a} <:- {a}");
            assert!(naive_subtype(&a, &a), "{a} <:n {a}");
        }
    }

    #[test]
    fn transitive() {
        // `<:` and `<:n` are transitive outright. The literal Figure-2
        // rules for `<:+`/`<:-` are transitive only along chains whose
        // endpoints remain compatible (the semantic reading — "the
        // cast A ⇒ B cannot blame positively" — only constrains
        // castable, i.e. compatible, pairs); see `pos_neg_transitive_
        // on_compatible_chains` for that refinement and the module
        // docs of this file.
        let u = universe();
        type Rel = fn(&Type, &Type) -> bool;
        for rel in [subtype as Rel, naive_subtype as Rel] {
            for a in &u {
                for b in &u {
                    if !rel(a, b) {
                        continue;
                    }
                    for c in &u {
                        if rel(b, c) {
                            assert!(rel(a, c), "transitivity fails at {a}, {b}, {c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pos_neg_transitive_on_compatible_chains() {
        let u = universe();
        type Rel = fn(&Type, &Type) -> bool;
        for rel in [pos_subtype as Rel, neg_subtype as Rel] {
            for a in &u {
                for b in &u {
                    if !rel(a, b) {
                        continue;
                    }
                    for c in &u {
                        if rel(b, c) && a.compatible(c) {
                            assert!(rel(a, c), "transitivity fails at {a}, {b}, {c}");
                        }
                    }
                }
            }
        }
        // Witness for why the compatibility proviso is needed:
        // Int→Int <:+ ?→Int <:+ Bool→Int, yet Int→Int and Bool→Int are
        // incompatible (no cast between them exists) and the relation
        // does not hold.
        let ii = Type::fun(Type::INT, Type::INT);
        let di = Type::fun(Type::DYN, Type::INT);
        let bi = Type::fun(Type::BOOL, Type::INT);
        assert!(pos_subtype(&ii, &di));
        assert!(pos_subtype(&di, &bi));
        assert!(!pos_subtype(&ii, &bi));
        assert!(!ii.compatible(&bi));
    }

    #[test]
    fn antisymmetric_where_claimed() {
        // Subtyping and naive subtyping are antisymmetric.
        let u = universe();
        type Rel = fn(&Type, &Type) -> bool;
        for rel in [subtype as Rel, naive_subtype as Rel] {
            for a in &u {
                for b in &u {
                    if rel(a, b) && rel(b, a) {
                        assert_eq!(a, b, "antisymmetry fails at {a}, {b}");
                    }
                }
            }
        }
        // Witness that <:- is not antisymmetric.
        assert!(neg_subtype(&Type::DYN, &Type::INT));
        assert!(neg_subtype(&Type::INT, &Type::DYN));
        // Nor is <:+ under the literal rules: both casts between
        // ? → Int and Int → Int translate to coercions without a
        // positive label, so both are positively safe (consistent with
        // Lemma 9), yet the types differ.
        let di = Type::fun(Type::DYN, Type::INT);
        let ii = Type::fun(Type::INT, Type::INT);
        assert!(pos_subtype(&di, &ii));
        assert!(pos_subtype(&ii, &di));
    }

    #[test]
    fn tangram_lemma() {
        // Lemma 4: A <: B iff A <:+ B and A <:- B;
        //          A <:n B iff A <:+ B and B <:- A.
        let u = universe();
        for a in &u {
            for b in &u {
                assert_eq!(
                    subtype(a, b),
                    pos_subtype(a, b) && neg_subtype(a, b),
                    "tangram 1 fails at {a}, {b}"
                );
                assert_eq!(
                    naive_subtype(a, b),
                    pos_subtype(a, b) && neg_subtype(b, a),
                    "tangram 2 fails at {a}, {b}"
                );
            }
        }
    }

    #[test]
    fn ground_types_are_subtypes_of_dyn() {
        for g in Ground::ALL {
            assert!(subtype(&g.ty(), &Type::DYN), "{g} <: ?");
        }
    }

    #[test]
    fn classic_examples() {
        let ii = Type::fun(Type::INT, Type::INT);
        // Int → Int is more precise than ? → ? and than ?.
        assert!(naive_subtype(&ii, &Type::dyn_fun()));
        assert!(naive_subtype(&ii, &Type::DYN));
        // But it is not an ordinary subtype of ? (its injection can be
        // blamed negatively), while it is a positive subtype.
        assert!(!subtype(&ii, &Type::DYN));
        assert!(pos_subtype(&ii, &Type::DYN));
        assert!(!neg_subtype(&ii, &Type::DYN));
        // Contravariance: (? → Int) <: (Int→Int → Int) requires
        // Int→Int <: ?, which is false.
        let f1 = Type::fun(Type::DYN, Type::INT);
        let f2 = Type::fun(ii.clone(), Type::INT);
        assert!(!subtype(&f1, &f2));
    }

    #[test]
    fn safe_cast_rules() {
        use crate::label::Label;
        let p = Label::new(0);
        let q = Label::new(1);
        let ii = Type::fun(Type::INT, Type::INT);
        // Unrelated labels are always safe.
        assert!(cast_safe_for(&Type::DYN, p, &Type::INT, q));
        // Int→Int <:+ ? so the cast is safe for p but not for p̄.
        assert!(cast_safe_for(&ii, p, &Type::DYN, p));
        assert!(!cast_safe_for(&ii, p, &Type::DYN, p.complement()));
        // ? <:- Int so the projection is safe for p̄ but not for p.
        assert!(cast_safe_for(&Type::DYN, p, &Type::INT, p.complement()));
        assert!(!cast_safe_for(&Type::DYN, p, &Type::INT, p));
        // Bullet casts are safe for everything.
        assert!(cast_safe_for(&Type::DYN, Label::bullet(), &Type::INT, q));
    }
}
