//! Random workload generators for the blame/coercion calculi.
//!
//! Everything is driven by a seeded [`Gen`] so that property tests
//! (which feed in proptest-generated seeds) and benchmarks (which use
//! fixed seeds) are reproducible.
//!
//! The generators maintain well-typedness by construction:
//!
//! * [`Gen::ty`] / [`Gen::compatible_pair`] — random types and
//!   compatible pairs `A ∼ B`;
//! * [`Gen::coercion_from`] / [`Gen::coercion_to`] — random well-typed
//!   λC coercions with a fixed source (resp. target) endpoint;
//! * [`Gen::space_from`] — random canonical λS coercions;
//! * [`Gen::term_b`] — random closed, well-typed λB terms of a
//!   requested type (which translate to λC and λS via `bc-translate`);
//! * [`Gen::term_s`] / [`Gen::compiled_s`] — the λS translations of
//!   random λB terms, as trees and lowered to the compiled id-carrying
//!   IR of `bc_core::sterm`;
//! * [`Gen::context_b`] — random λB "contexts": terms with a free
//!   variable `hole` of a requested type (plugging a *closed* term by
//!   substitution coincides with context plugging).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bc_core::coercion::SpaceCoercion;
use bc_lambda_b as lb;
use bc_lambda_c::coercion::Coercion;
use bc_syntax::{BaseType, Ground, Label, Name, Op, Type};
use bc_translate::coercion_to_space;

/// The distinguished free variable used by generated contexts.
pub const HOLE: &str = "hole";

/// A seeded workload generator.
#[derive(Debug)]
pub struct Gen {
    rng: StdRng,
    fresh: u32,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            fresh: 0,
        }
    }

    fn pick(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    fn fresh_name(&mut self, base: &str) -> Name {
        let n = self.fresh;
        self.fresh += 1;
        Name::from(format!("{base}{n}").as_str())
    }

    /// A random blame label.
    pub fn label(&mut self) -> Label {
        let l = Label::new(self.rng.gen_range(0..64));
        if self.rng.gen_bool(0.3) {
            l.complement()
        } else {
            l
        }
    }

    /// A random base type.
    pub fn base(&mut self) -> BaseType {
        if self.rng.gen_bool(0.5) {
            BaseType::Int
        } else {
            BaseType::Bool
        }
    }

    /// A random ground type.
    pub fn ground(&mut self) -> Ground {
        match self.pick(3) {
            0 => Ground::Base(BaseType::Int),
            1 => Ground::Base(BaseType::Bool),
            _ => Ground::Fun,
        }
    }

    /// A random type of height at most `depth + 1`.
    pub fn ty(&mut self, depth: usize) -> Type {
        if depth == 0 || self.rng.gen_bool(0.55) {
            match self.pick(3) {
                0 => Type::INT,
                1 => Type::BOOL,
                _ => Type::DYN,
            }
        } else {
            Type::fun(self.ty(depth - 1), self.ty(depth - 1))
        }
    }

    /// A random pair of *compatible* types `A ∼ B`.
    pub fn compatible_pair(&mut self, depth: usize) -> (Type, Type) {
        match self.pick(if depth == 0 { 3 } else { 4 }) {
            0 => {
                let b = self.base().ty();
                (b.clone(), b)
            }
            1 => (self.ty(depth), Type::DYN),
            2 => (Type::DYN, self.ty(depth)),
            _ => {
                let (a1, b1) = self.compatible_pair(depth - 1);
                let (a2, b2) = self.compatible_pair(depth - 1);
                (Type::fun(a1, a2), Type::fun(b1, b2))
            }
        }
    }

    /// A random well-typed coercion with the given source type;
    /// returns the coercion and its target type.
    pub fn coercion_from(&mut self, src: &Type, depth: usize) -> (Coercion, Type) {
        if depth == 0 {
            return (Coercion::id(src.clone()), src.clone());
        }
        let choice = self.pick(10);
        match (choice, src) {
            // Composition: c : src ⇒ B, d : B ⇒ C.
            (0 | 1, _) => {
                let (c, mid) = self.coercion_from(src, depth - 1);
                let (d, tgt) = self.coercion_from(&mid, depth - 1);
                (c.seq(d), tgt)
            }
            // Injection when the source is ground.
            (2 | 3, _) if src.as_ground().is_some() => {
                (Coercion::inj(src.as_ground().expect("guarded")), Type::DYN)
            }
            // Projection when the source is ?.
            (2..=4, Type::Dyn) => {
                let g = self.ground();
                let p = self.label();
                (Coercion::proj(g, p), g.ty())
            }
            // Function coercion when the source is a function type.
            (2..=5, Type::Fun(a, b)) => {
                let (d, tgt_cod) = self.coercion_from(b, depth - 1);
                let (c, tgt_dom) = self.coercion_to(a, depth - 1);
                (Coercion::fun(c, d), Type::fun(tgt_dom, tgt_cod))
            }
            // Failure (rare; requires a non-? source).
            (6, src) if !src.is_dyn() && self.rng.gen_bool(0.3) => {
                let g = src.ground_of().expect("non-? source");
                let mut h = self.ground();
                if h == g {
                    h = match g {
                        Ground::Base(BaseType::Int) => Ground::Fun,
                        _ => Ground::Base(BaseType::Int),
                    };
                }
                let p = self.label();
                // Report the type checker's representative target for
                // `⊥GpH` (the named ground `H`), keeping generated
                // compositions consistent with `type_of`.
                (Coercion::fail(g, p, h), h.ty())
            }
            _ => (Coercion::id(src.clone()), src.clone()),
        }
    }

    /// A random well-typed coercion with the given *target* type;
    /// returns the coercion and its source type.
    pub fn coercion_to(&mut self, tgt: &Type, depth: usize) -> (Coercion, Type) {
        if depth == 0 {
            return (Coercion::id(tgt.clone()), tgt.clone());
        }
        let choice = self.pick(8);
        match (choice, tgt) {
            (0 | 1, _) => {
                let (d, mid) = self.coercion_to(tgt, depth - 1);
                let (c, src) = self.coercion_to(&mid, depth - 1);
                (c.seq(d), src)
            }
            (2 | 3, Type::Dyn) => {
                let g = self.ground();
                (Coercion::inj(g), g.ty())
            }
            (2..=4, _) if tgt.as_ground().is_some() && self.rng.gen_bool(0.7) => {
                let g = tgt.as_ground().expect("guarded");
                (Coercion::proj(g, self.label()), Type::DYN)
            }
            (2..=5, Type::Fun(a, b)) => {
                let (d, src_cod) = self.coercion_to(b, depth - 1);
                let (c, src_dom) = self.coercion_from(a, depth - 1);
                (Coercion::fun(c, d), Type::fun(src_dom, src_cod))
            }
            _ => (Coercion::id(tgt.clone()), tgt.clone()),
        }
    }

    /// A random canonical λS coercion with the given source, obtained
    /// by normalising a random λC coercion; returns it with its target.
    pub fn space_from(&mut self, src: &Type, depth: usize) -> (SpaceCoercion, Type) {
        let (c, tgt) = self.coercion_from(src, depth);
        (coercion_to_space(&c), tgt)
    }

    /// A random closed, well-typed λB term of the given type.
    ///
    /// Generated programs may diverge (via `fix`) or allocate blame;
    /// callers use fuel and treat timeouts as inconclusive.
    pub fn term_b(&mut self, ty: &Type, depth: usize) -> lb::Term {
        let mut env = Vec::new();
        self.term_b_in(&mut env, ty, depth)
    }

    /// A random well-typed λB term in an environment.
    pub fn term_b_in(&mut self, env: &mut Vec<(Name, Type)>, ty: &Type, depth: usize) -> lb::Term {
        // Use a variable of the right type if one is in scope.
        let candidates: Vec<Name> = env
            .iter()
            .filter(|(_, t)| t == ty)
            .map(|(n, _)| n.clone())
            .collect();
        if !candidates.is_empty() && self.rng.gen_bool(0.3) {
            let i = self.pick(candidates.len());
            return lb::Term::Var(candidates[i].clone());
        }
        if depth == 0 {
            return self.leaf_b(env, ty);
        }
        match self.pick(10) {
            // A cast from a compatible type.
            0 | 1 => {
                let from = self.compatible_with(ty, depth.saturating_sub(1));
                let inner = self.term_b_in(env, &from, depth - 1);
                inner.cast(from, self.label(), ty.clone())
            }
            // An application.
            2 => {
                let arg_ty = self.ty(1);
                let fun_ty = Type::fun(arg_ty.clone(), ty.clone());
                let fun = self.term_b_in(env, &fun_ty, depth - 1);
                let arg = self.term_b_in(env, &arg_ty, depth - 1);
                fun.app(arg)
            }
            // A conditional.
            3 => {
                let c = self.term_b_in(env, &Type::BOOL, depth - 1);
                let t = self.term_b_in(env, ty, depth - 1);
                let e = self.term_b_in(env, ty, depth - 1);
                lb::Term::ite(c, t, e)
            }
            // A let binding.
            4 => {
                let bound_ty = self.ty(1);
                let bound = self.term_b_in(env, &bound_ty, depth - 1);
                let x = self.fresh_name("x");
                env.push((x.clone(), bound_ty));
                let body = self.term_b_in(env, ty, depth - 1);
                env.pop();
                lb::Term::Let(x, bound.into(), body.into())
            }
            // Type-directed constructors.
            _ => self.constructor_b(env, ty, depth),
        }
    }

    /// A term built by the outermost constructor of `ty`.
    fn constructor_b(&mut self, env: &mut Vec<(Name, Type)>, ty: &Type, depth: usize) -> lb::Term {
        match ty {
            Type::Base(BaseType::Int) => {
                let op = [Op::Add, Op::Sub, Op::Mul][self.pick(3)];
                let a = self.term_b_in(env, &Type::INT, depth - 1);
                let b = self.term_b_in(env, &Type::INT, depth - 1);
                lb::Term::op2(op, a, b)
            }
            Type::Base(BaseType::Bool) => {
                let op = [Op::Eq, Op::Lt, Op::Leq][self.pick(3)];
                let a = self.term_b_in(env, &Type::INT, depth - 1);
                let b = self.term_b_in(env, &Type::INT, depth - 1);
                lb::Term::op2(op, a, b)
            }
            Type::Fun(a, b) => {
                let x = self.fresh_name("x");
                env.push((x.clone(), (**a).clone()));
                let body = self.term_b_in(env, b, depth - 1);
                env.pop();
                lb::Term::Lam(x, (**a).clone(), body.into())
            }
            Type::Dyn => {
                let from = self.compatible_with(&Type::DYN, 1);
                let inner = self.term_b_in(env, &from, depth - 1);
                inner.cast(from, self.label(), Type::DYN)
            }
        }
    }

    /// A minimal term of the given type (used when depth runs out).
    fn leaf_b(&mut self, env: &mut Vec<(Name, Type)>, ty: &Type) -> lb::Term {
        match ty {
            Type::Base(BaseType::Int) => lb::Term::int(self.rng.gen_range(-4..5)),
            Type::Base(BaseType::Bool) => lb::Term::bool(self.rng.gen_bool(0.5)),
            Type::Fun(a, b) => {
                let x = self.fresh_name("x");
                env.push((x.clone(), (**a).clone()));
                let body = self.leaf_b(env, b);
                env.pop();
                lb::Term::Lam(x, (**a).clone(), body.into())
            }
            Type::Dyn => {
                let b = self.base().ty();
                let inner = self.leaf_b(env, &b);
                inner.cast(b, self.label(), Type::DYN)
            }
        }
    }

    /// A random type compatible with `ty`.
    pub fn compatible_with(&mut self, ty: &Type, depth: usize) -> Type {
        match ty {
            Type::Dyn => self.ty(depth),
            Type::Base(_) => {
                if self.rng.gen_bool(0.5) {
                    Type::DYN
                } else {
                    ty.clone()
                }
            }
            Type::Fun(a, b) => {
                if self.rng.gen_bool(0.3) {
                    Type::DYN
                } else {
                    let a2 = self.compatible_with(a, depth.saturating_sub(1));
                    let b2 = self.compatible_with(b, depth.saturating_sub(1));
                    Type::fun(a2, b2)
                }
            }
        }
    }

    /// A random closed, well-typed λS term of the given type, obtained
    /// by translating a random λB term through `|·|BC` and `|·|CS`
    /// (so its coercions are canonical by construction).
    pub fn term_s(&mut self, ty: &Type, depth: usize) -> bc_core::Term {
        bc_translate::term_b_to_s(&self.term_b(ty, depth))
    }

    /// A random compiled λS program: the tree term *and* its lowering
    /// into the given context's arenas (the pair the compiled-path
    /// property tests compare).
    pub fn compiled_s(
        &mut self,
        ctx: &mut bc_core::CompileCtx,
        ty: &Type,
        depth: usize,
    ) -> (bc_core::Term, bc_core::STerm) {
        let tree = self.term_s(ty, depth);
        let compiled = ctx.compile(&tree);
        (tree, compiled)
    }

    /// A random λB context: a closed term except for the free variable
    /// [`HOLE`] of type `hole_ty`, with overall type `result_ty`.
    /// Plugging a closed term is substitution.
    pub fn context_b(&mut self, hole_ty: &Type, result_ty: &Type, depth: usize) -> lb::Term {
        let mut env = vec![(Name::from(HOLE), hole_ty.clone())];
        self.term_b_in(&mut env, result_ty, depth)
    }

    /// Plugs a closed term into a context generated by
    /// [`Gen::context_b`].
    pub fn plug(context: &lb::Term, term: &lb::Term) -> lb::Term {
        lb::subst::subst(context, &Name::from(HOLE), term)
    }
}

/// Seeded GTLC *source-text* workloads for the multi-threaded serving
/// tests and benches.
///
/// Pool jobs cross thread boundaries, so they travel as source text
/// (term trees are `Rc`-shaped and deliberately not `Send`). This
/// module generates deterministic mixed workloads: a fixed family of
/// program *shapes* — boundary-crossing loops, cast-free loops,
/// dynamic-reuse combinators, runtime-blame programs, divergent
/// spinners — instantiated with seed-derived constants. Constants
/// never change the set of types or coercions a shape interns, so a
/// pool warmed on [`sources::shapes`] serves any [`sources::mixed`]
/// batch with **zero** local interning (the base-sharing acceptance
/// criterion). [`sources::drifting`] is the adversarial counterpart:
/// its hot set *rotates*, introducing new type structure every K
/// jobs — the workload live base promotion is measured against.
pub mod sources {
    /// Number of distinct program shapes in the mix.
    pub const SHAPES: usize = 6;

    /// One representative source per shape — the warmup set that
    /// covers every type and coercion the mixed workload can intern.
    pub fn shapes() -> Vec<String> {
        (0..SHAPES).map(|shape| render(shape, 2)).collect()
    }

    /// A deterministic mixed workload of `n` sources cycling through
    /// the shapes, with seed-derived constants.
    pub fn mixed(seed: u64, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                // SplitMix64-style scramble: cheap, stable across
                // platforms, and independent of the vendored rand.
                let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let k = ((z >> 33) % 24) as i64 + 1;
                render(i % SHAPES, k)
            })
            .collect()
    }

    /// A *drifting* workload: `n` sources whose hot set rotates every
    /// `rotate_every` jobs.
    ///
    /// Where [`sources::mixed`](mixed) varies only constants (so a
    /// one-shot warmup covers it forever), `drifting` models the
    /// traffic a long-lived pool actually sees: every `rotate_every`
    /// jobs the *type structure* of the hot programs changes. Jobs
    /// cycle through three shapes — a stable boundary loop (always
    /// warmup-covered, so base hits never go to zero) and two
    /// cast-heavy shapes built around a phase-specific arrow tower
    /// (`drift_type`) — so each rotation forces genuinely new type
    /// *and* coercion nodes into whichever arena serves it. The
    /// three-shape cycle is deliberately coprime with the usual
    /// 2/4-worker pool sizes: round-robin dispatch cannot pin a shape
    /// to a worker, so *every* worker meets every phase's new nodes —
    /// exactly the "duplicated N ways" cost that live base promotion
    /// exists to collapse.
    ///
    /// Deterministic in `(seed, n, rotate_every)`; constants still
    /// come from the same SplitMix64 scramble as [`mixed`].
    ///
    /// # Panics
    ///
    /// Panics if `rotate_every` is zero.
    pub fn drifting(seed: u64, n: usize, rotate_every: usize) -> Vec<String> {
        assert!(rotate_every > 0, "rotate_every must be positive");
        (0..n)
            .map(|i| {
                let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let k = ((z >> 33) % 24) as i64 + 1;
                let phase = i / rotate_every;
                let ty = drift_type(phase);
                match i % 3 {
                    // The stable resident: phase-independent, covered
                    // by the `shapes()` warmup.
                    0 => render(0, k),
                    // A dynamic value cast *into* the phase type: the
                    // `?` ⇒ tower projection interns one coercion
                    // spine per phase.
                    1 => format!("let f = ((fun x => x) : ?) in let g = (f : {ty}) in {k}"),
                    // A tower-typed identity pushed through `?` and
                    // back at the *function* type over the tower: a
                    // deeper coercion spine sharing the phase's type
                    // nodes.
                    _ => format!(
                        "let poly = fun (x : {ty}) => x in \
                         let d = ((poly : ?) : ({ty}) -> ({ty})) in {k}"
                    ),
                }
            })
            .collect()
    }

    /// The phase-`p` hot type: a depth-5 arrow tower whose `Int`/`Bool`
    /// leaves encode `p + 1` in binary, so consecutive phases (any two
    /// phases below 63, in fact) differ in at least one leaf — and
    /// every spine node above a changed leaf is a genuinely new node
    /// to an arena warmed on earlier phases.
    fn drift_type(phase: usize) -> String {
        let bits = phase as u64 + 1;
        let mut ty = String::from(if bits & 1 == 0 { "Int" } else { "Bool" });
        for j in 1..=5u64 {
            let leaf = if (bits >> (j % 6)) & 1 == 0 {
                "Int"
            } else {
                "Bool"
            };
            ty = format!("{leaf} -> ({ty})");
        }
        ty
    }

    /// Renders shape `shape` with loop-bound/offset constant `k`
    /// (`1 <= k`, kept small so tests stay fast).
    fn render(shape: usize, k: i64) -> String {
        match shape % SHAPES {
            // Boundary-crossing loop: the λS space-efficiency
            // workload (casts on every iteration).
            0 => format!(
                "letrec loop (n : Int) : Bool = \
                   if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
                 in loop {k}"
            ),
            // Cast-free static loop: the no-overhead baseline.
            1 => format!(
                "letrec loop (n : Int) : Bool = \
                   if n = 0 then true else loop (n - 1) \
                 in loop {k}"
            ),
            // Dynamic-reuse combinator: higher-order flow through `?`.
            2 => format!(
                "let twice = fun (f : ? -> ?) => fun (x : ?) => f (f x) in \
                 let inc = fun x => x + {k} in \
                 (twice (inc : ? -> ?) {k} : Int)"
            ),
            // Runtime blame: a Bool flows into an Int operation.
            3 => format!("let f = fun x => x + {k} in f true"),
            // Mixed-recursion even/odd (typed body, dynamic results).
            4 => format!(
                "letrec even (n : Int) : Bool = \
                   if n = 0 then true else \
                   if n = 1 then false else even (n - 2) \
                 in even {}",
                2 * k
            ),
            // Divergent spinner: always exhausts its fuel, so
            // fuel-exhaustion fingerprints are part of the mix.
            _ => format!("letrec spin (n : Int) : Int = spin (n + 1) in spin {k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_types_respect_depth() {
        let mut g = Gen::new(1);
        for _ in 0..100 {
            assert!(g.ty(2).height() <= 3);
        }
    }

    #[test]
    fn compatible_pairs_are_compatible() {
        let mut g = Gen::new(2);
        for _ in 0..500 {
            let (a, b) = g.compatible_pair(2);
            assert!(a.compatible(&b), "{a} ≁ {b}");
        }
    }

    #[test]
    fn coercions_from_are_well_typed() {
        let mut g = Gen::new(3);
        for _ in 0..500 {
            let src = g.ty(2);
            let (c, tgt) = g.coercion_from(&src, 3);
            assert!(c.check(&src, &tgt), "{c} at {src} ⇒ {tgt}");
        }
    }

    #[test]
    fn coercions_to_are_well_typed() {
        let mut g = Gen::new(4);
        for _ in 0..500 {
            let tgt = g.ty(2);
            let (c, src) = g.coercion_to(&tgt, 3);
            assert!(c.check(&src, &tgt), "{c} at {src} ⇒ {tgt}");
        }
    }

    #[test]
    fn space_coercions_are_canonical_and_well_typed() {
        let mut g = Gen::new(5);
        for _ in 0..300 {
            let src = g.ty(2);
            let (s, tgt) = g.space_from(&src, 3);
            assert!(s.check(&src, &tgt), "{s} at {src} ⇒ {tgt}");
        }
    }

    #[test]
    fn terms_are_well_typed() {
        let mut g = Gen::new(6);
        for _ in 0..200 {
            let ty = g.ty(1);
            let t = g.term_b(&ty, 3);
            assert_eq!(lb::type_of(&t), Ok(ty.clone()), "{t}");
        }
    }

    #[test]
    fn generated_s_terms_are_well_typed() {
        let mut g = Gen::new(8);
        for _ in 0..100 {
            let ty = g.ty(1);
            let t = g.term_s(&ty, 3);
            assert_eq!(bc_core::type_of(&t), Ok(ty.clone()), "{t}");
        }
    }

    #[test]
    fn compiled_programs_round_trip() {
        let mut g = Gen::new(9);
        let mut ctx = bc_core::CompileCtx::new();
        for _ in 0..50 {
            let ty = g.ty(1);
            let (tree, compiled) = g.compiled_s(&mut ctx, &ty, 3);
            assert_eq!(
                bc_core::decompile_term(&compiled, &ctx.arena, &ctx.types),
                tree
            );
        }
    }

    #[test]
    fn contexts_plug_to_well_typed_terms() {
        let mut g = Gen::new(7);
        for _ in 0..200 {
            let hole_ty = g.ty(1);
            let result_ty = g.ty(1);
            let cx = g.context_b(&hole_ty, &result_ty, 3);
            let m = g.term_b(&hole_ty, 2);
            let plugged = Gen::plug(&cx, &m);
            assert_eq!(lb::type_of(&plugged), Ok(result_ty.clone()), "{plugged}");
        }
    }
}
