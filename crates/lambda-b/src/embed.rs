//! The embedding `⌈M⌉` of dynamically-typed λ-calculus into λB
//! (Figure 1).
//!
//! The embedding introduces a fresh blame label for each cast it
//! inserts:
//!
//! ```text
//! ⌈k⌉      = k : ι ⇒p ?
//! ⌈op(M~)⌉ = op(⌈M~⌉ : ? ⇒p~ ι~) : ι ⇒p ?
//! ⌈x⌉      = x
//! ⌈λx. N⌉  = (λx:?. ⌈N⌉) : ?→? ⇒p ?
//! ⌈L M⌉    = (⌈L⌉ : ? ⇒p ?→?) ⌈M⌉
//! ```
//!
//! plus the evident clauses for the standard `if`/`let`/`fix`
//! extensions. Every embedded term has type `?` in an environment
//! binding all its free variables at type `?`.

use std::collections::HashSet;

use bc_syntax::label::LabelSupply;
use bc_syntax::untyped::UntypedTerm;
use bc_syntax::{Name, Type};

use crate::term::Term;

/// Embeds a dynamically-typed term into λB, drawing fresh blame
/// labels from `labels`. The result has type `?` (in an environment
/// where every free variable has type `?`).
///
/// ```
/// use bc_lambda_b::embed::embed;
/// use bc_lambda_b::eval::{run, Outcome};
/// use bc_syntax::label::LabelSupply;
/// use bc_syntax::untyped::UntypedTerm;
/// use bc_syntax::Op;
///
/// // ⌈(λx. x + 1) 41⌉ evaluates to an injected 42.
/// let m = UntypedTerm::app(
///     UntypedTerm::lam("x", UntypedTerm::op2(Op::Add, UntypedTerm::var("x"), UntypedTerm::int(1))),
///     UntypedTerm::int(41),
/// );
/// let embedded = embed(&m, &mut LabelSupply::new());
/// let out = run(&embedded, 1_000).expect("well typed").outcome;
/// match out {
///     Outcome::Value(v) => assert_eq!(v.to_string(), "(42 : Int =p3=> ?)"),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub fn embed(term: &UntypedTerm, labels: &mut LabelSupply) -> Term {
    // `fix_vars` tracks variables bound by an embedded `fix`, which
    // have type `?→?` rather than `?` and therefore need an injection
    // at each use site.
    embed_env(term, labels, &mut HashSet::new())
}

fn embed_env(term: &UntypedTerm, labels: &mut LabelSupply, fix_vars: &mut HashSet<Name>) -> Term {
    match term {
        UntypedTerm::Const(k) => {
            Term::Const(*k).cast(k.base_type().ty(), labels.fresh(), Type::DYN)
        }
        UntypedTerm::Op(op, args) => {
            let (params, result) = op.signature();
            let cast_args: Vec<Term> = params
                .iter()
                .zip(args)
                .map(|(param, arg)| {
                    embed_env(arg, labels, fix_vars).cast(Type::DYN, labels.fresh(), param.ty())
                })
                .collect();
            Term::Op(*op, cast_args).cast(result.ty(), labels.fresh(), Type::DYN)
        }
        UntypedTerm::Var(x) => {
            if fix_vars.contains(x) {
                // A fix-bound variable has type ?→? in λB; inject it.
                Term::Var(x.clone()).cast(Type::dyn_fun(), labels.fresh(), Type::DYN)
            } else {
                Term::Var(x.clone())
            }
        }
        UntypedTerm::Lam(x, body) => {
            let shadowed = fix_vars.remove(x);
            let b = embed_env(body, labels, fix_vars);
            if shadowed {
                fix_vars.insert(x.clone());
            }
            Term::Lam(x.clone(), Type::DYN, b.into()).cast(
                Type::dyn_fun(),
                labels.fresh(),
                Type::DYN,
            )
        }
        UntypedTerm::App(l, m) => {
            let lt =
                embed_env(l, labels, fix_vars).cast(Type::DYN, labels.fresh(), Type::dyn_fun());
            let mt = embed_env(m, labels, fix_vars);
            lt.app(mt)
        }
        UntypedTerm::If(c, t, e) => {
            let ct = embed_env(c, labels, fix_vars).cast(Type::DYN, labels.fresh(), Type::BOOL);
            Term::If(
                ct.into(),
                embed_env(t, labels, fix_vars).into(),
                embed_env(e, labels, fix_vars).into(),
            )
        }
        UntypedTerm::Let(x, m, n) => {
            let mt = embed_env(m, labels, fix_vars);
            let shadowed = fix_vars.remove(x);
            let nt = embed_env(n, labels, fix_vars);
            if shadowed {
                fix_vars.insert(x.clone());
            }
            Term::Let(x.clone(), mt.into(), nt.into())
        }
        UntypedTerm::Fix(f, x, body) => {
            // ⌈fix f x. N⌉ = (fix f (x:?):?. ⌈N⌉′) : ?→? ⇒p ?
            // where ⌈·⌉′ injects each use of `f` from ?→? to ?.
            let f_was_fix = !fix_vars.insert(f.clone());
            let x_shadowed = fix_vars.remove(x);
            let b = embed_env(body, labels, fix_vars);
            if !f_was_fix {
                fix_vars.remove(f);
            }
            if x_shadowed {
                fix_vars.insert(x.clone());
            }
            Term::Fix(f.clone(), x.clone(), Type::DYN, Type::DYN, b.into()).cast(
                Type::dyn_fun(),
                labels.fresh(),
                Type::DYN,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, Outcome, RunError};
    use crate::typing::{type_of_in, TypeEnv};
    use bc_syntax::{Constant, Op};

    fn eval_embedded(t: &UntypedTerm, fuel: u64) -> Outcome {
        let m = embed(t, &mut LabelSupply::new());
        run(&m, fuel).expect("embedded term is well typed").outcome
    }

    /// Unwraps a `V : G ⇒p ?` value to its payload constant.
    fn expect_injected_const(outcome: Outcome) -> Constant {
        match outcome {
            Outcome::Value(Term::Cast(inner, _)) => match &*inner {
                Term::Const(k) => *k,
                other => panic!("expected constant under injection, got {other}"),
            },
            other => panic!("expected injected value, got {other:?}"),
        }
    }

    #[test]
    fn embedded_terms_have_type_dyn() {
        let samples = [
            UntypedTerm::int(1),
            UntypedTerm::lam("x", UntypedTerm::var("x")),
            UntypedTerm::op2(Op::Add, UntypedTerm::int(1), UntypedTerm::int(2)),
            UntypedTerm::ite(
                UntypedTerm::bool(true),
                UntypedTerm::int(1),
                UntypedTerm::int(2),
            ),
            UntypedTerm::fix(
                "f",
                "x",
                UntypedTerm::app(UntypedTerm::var("f"), UntypedTerm::var("x")),
            ),
        ];
        for s in &samples {
            let m = embed(s, &mut LabelSupply::new());
            let ty = type_of_in(&mut TypeEnv::new(), &m)
                .unwrap_or_else(|e| panic!("embedding of {s} ill-typed: {e}"));
            assert_eq!(ty, Type::DYN, "embedding of {s}");
        }
    }

    #[test]
    fn arithmetic_works_dynamically() {
        let t = UntypedTerm::op2(Op::Mul, UntypedTerm::int(6), UntypedTerm::int(7));
        assert_eq!(
            expect_injected_const(eval_embedded(&t, 1_000)),
            Constant::Int(42)
        );
    }

    #[test]
    fn dynamic_type_error_blames_a_projection() {
        // 1 + true: the embedding casts `true : Bool ⇒ ?` and then
        // projects `? ⇒ Int`, which blames the projection's label.
        let t = UntypedTerm::op2(Op::Add, UntypedTerm::int(1), UntypedTerm::bool(true));
        match eval_embedded(&t, 1_000) {
            Outcome::Blame(_) => {}
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn applying_a_non_function_blames() {
        let t = UntypedTerm::app(UntypedTerm::int(1), UntypedTerm::int(2));
        match eval_embedded(&t, 1_000) {
            Outcome::Blame(_) => {}
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn omega_diverges() {
        let half = UntypedTerm::lam(
            "x",
            UntypedTerm::app(UntypedTerm::var("x"), UntypedTerm::var("x")),
        );
        let omega = UntypedTerm::app(half.clone(), half);
        let m = embed(&omega, &mut LabelSupply::new());
        assert!(matches!(
            run(&m, 500),
            Err(RunError::FuelExhausted { steps: 500, .. })
        ));
    }

    #[test]
    fn untyped_recursion_via_fix() {
        // fix sum n. if n = 0 then 0 else n + sum (n - 1), applied to 5.
        let body = UntypedTerm::ite(
            UntypedTerm::op2(Op::Eq, UntypedTerm::var("n"), UntypedTerm::int(0)),
            UntypedTerm::int(0),
            UntypedTerm::op2(
                Op::Add,
                UntypedTerm::var("n"),
                UntypedTerm::app(
                    UntypedTerm::var("sum"),
                    UntypedTerm::op2(Op::Sub, UntypedTerm::var("n"), UntypedTerm::int(1)),
                ),
            ),
        );
        let t = UntypedTerm::app(UntypedTerm::fix("sum", "n", body), UntypedTerm::int(5));
        assert_eq!(
            expect_injected_const(eval_embedded(&t, 10_000)),
            Constant::Int(15)
        );
    }
}
