//! Canned λB programs used throughout the test suite, the examples,
//! and the benchmarks — most importantly the mutually recursive
//! even/odd workload from the introduction of the paper (originally
//! Herman et al. 2007), whose tail calls cross a typed/untyped
//! boundary and leak space in λB but not in λS.

use bc_syntax::label::LabelSupply;
use bc_syntax::untyped::UntypedTerm;
use bc_syntax::{Op, Type};

use crate::embed::embed;
use crate::term::Term;

/// `even n` where `even : Int → Bool` is *typed* and `odd` is
/// *untyped*, mutually recursive with all recursive calls in tail
/// position — the paper's motivating space-leak workload.
///
/// Mutual recursion is tied through the dynamic type: `even` is a
/// typed `fix` that passes itself (injected into `?`) to the untyped
/// `odd` on every call, and `odd` calls back through a projection.
/// Every iteration therefore crosses the typed/untyped boundary once
/// in each direction.
pub fn even_odd_mixed(n: i64) -> Term {
    let mut labels = LabelSupply::new();

    // odd = λeven'. λn. if n = 0 then false else even' (n - 1)
    // (entirely untyped; `even'` arrives as a dynamic value).
    let odd_untyped = UntypedTerm::lam(
        "even'",
        UntypedTerm::lam(
            "m",
            UntypedTerm::ite(
                UntypedTerm::op2(Op::Eq, UntypedTerm::var("m"), UntypedTerm::int(0)),
                UntypedTerm::bool(false),
                UntypedTerm::app(
                    UntypedTerm::var("even'"),
                    UntypedTerm::op2(Op::Sub, UntypedTerm::var("m"), UntypedTerm::int(1)),
                ),
            ),
        ),
    );
    let odd_dyn = embed(&odd_untyped, &mut labels);

    let ib = Type::fun(Type::INT, Type::BOOL);

    // even = fix even (k:Int):Bool.
    //          if k = 0 then true
    //          else (odd (even : Int→Bool ⇒ ?) (k-1 : Int ⇒ ?)) : ? ⇒ Bool
    let even_inj = Term::var("even").cast(ib.clone(), labels.fresh(), Type::DYN);
    let call_odd = Term::var("odd")
        .cast(Type::DYN, labels.fresh(), Type::dyn_fun())
        .app(even_inj)
        .cast(Type::DYN, labels.fresh(), Type::dyn_fun())
        .app(Term::op2(Op::Sub, Term::var("k"), Term::int(1)).cast(
            Type::INT,
            labels.fresh(),
            Type::DYN,
        ))
        .cast(Type::DYN, labels.fresh(), Type::BOOL);
    let even = Term::fix(
        "even",
        "k",
        Type::INT,
        Type::BOOL,
        Term::ite(
            Term::op2(Op::Eq, Term::var("k"), Term::int(0)),
            Term::bool(true),
            call_odd,
        ),
    );

    Term::let_("odd", odd_dyn, even.app(Term::int(n)))
}

/// A single typed recursive function whose every iteration round-trips
/// through the dynamic type in tail position:
///
/// ```text
/// fix f (n:Int):Bool.
///   if n = 0 then true
///   else ((f : Int→Bool ⇒ ? ⇒ ?→?) (n-1 : Int ⇒ ?)) : ? ⇒ Bool
/// ```
///
/// This is the smallest program exhibiting the λB space leak: the
/// pending `Bool ⇒ ?` / `? ⇒ Bool` result casts pile up in the
/// evaluation context, one pair per iteration.
pub fn boundary_loop(n: i64) -> Term {
    let mut labels = LabelSupply::new();
    let ib = Type::fun(Type::INT, Type::BOOL);
    let call = Term::var("f")
        .cast(ib.clone(), labels.fresh(), Type::DYN)
        .cast(Type::DYN, labels.fresh(), Type::dyn_fun())
        .app(Term::op2(Op::Sub, Term::var("n"), Term::int(1)).cast(
            Type::INT,
            labels.fresh(),
            Type::DYN,
        ))
        .cast(Type::DYN, labels.fresh(), Type::BOOL);
    Term::fix(
        "f",
        "n",
        Type::INT,
        Type::BOOL,
        Term::ite(
            Term::op2(Op::Eq, Term::var("n"), Term::int(0)),
            Term::bool(true),
            call,
        ),
    )
    .app(Term::int(n))
}

/// Fully typed even/odd (parity by subtracting two), the cast-free
/// baseline: runs in constant space in every calculus.
pub fn even_typed(n: i64) -> Term {
    Term::fix(
        "f",
        "n",
        Type::INT,
        Type::BOOL,
        Term::ite(
            Term::op2(Op::Eq, Term::var("n"), Term::int(0)),
            Term::bool(true),
            Term::ite(
                Term::op2(Op::Eq, Term::var("n"), Term::int(1)),
                Term::bool(false),
                Term::var("f").app(Term::op2(Op::Sub, Term::var("n"), Term::int(2))),
            ),
        ),
    )
    .app(Term::int(n))
}

/// Fully untyped even/odd via the embedding `⌈·⌉`: every operation
/// casts, but there is no typed/untyped *boundary*.
pub fn even_untyped(n: i64) -> Term {
    let body = UntypedTerm::ite(
        UntypedTerm::op2(Op::Eq, UntypedTerm::var("n"), UntypedTerm::int(0)),
        UntypedTerm::bool(true),
        UntypedTerm::ite(
            UntypedTerm::op2(Op::Eq, UntypedTerm::var("n"), UntypedTerm::int(1)),
            UntypedTerm::bool(false),
            UntypedTerm::app(
                UntypedTerm::var("f"),
                UntypedTerm::op2(Op::Sub, UntypedTerm::var("n"), UntypedTerm::int(2)),
            ),
        ),
    );
    let t = UntypedTerm::app(UntypedTerm::fix("f", "n", body), UntypedTerm::int(n));
    embed(&t, &mut LabelSupply::new())
}

/// A function value wrapped in `2·depth` alternating function-type
/// casts (`Int→Int ⇒ ?→? ⇒ Int→Int ⇒ …`), then applied to `0`. Used
/// to benchmark wrapper-chain overhead.
pub fn wrapped_identity(depth: usize) -> Term {
    let mut labels = LabelSupply::new();
    let ii = Type::fun(Type::INT, Type::INT);
    let dd = Type::dyn_fun();
    let mut t = Term::lam("x", Type::INT, Term::var("x"));
    for _ in 0..depth {
        t = t.cast(ii.clone(), labels.fresh(), dd.clone()).cast(
            dd.clone(),
            labels.fresh(),
            ii.clone(),
        );
    }
    t.app(Term::int(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, Outcome};
    use crate::typing::type_of;

    #[test]
    fn all_programs_are_well_typed() {
        for t in [
            even_odd_mixed(4),
            boundary_loop(4),
            even_typed(4),
            even_untyped(4),
            wrapped_identity(3),
        ] {
            type_of(&t).unwrap_or_else(|e| panic!("ill-typed program: {e}\n{t}"));
        }
    }

    #[test]
    fn parity_is_correct() {
        for n in 0..6 {
            let expected = Term::bool(n % 2 == 0);
            // boundary_loop is a single self-recursive loop: it
            // terminates with `true` for every n; its purpose is the
            // boundary crossing, not the parity.
            assert_eq!(
                run(&boundary_loop(n), 100_000).unwrap().outcome,
                Outcome::Value(Term::bool(true)),
                "boundary_loop({n})"
            );
            assert_eq!(
                run(&even_odd_mixed(n), 100_000).unwrap().outcome,
                Outcome::Value(expected.clone()),
                "even_odd_mixed({n})"
            );
            assert_eq!(
                run(&even_typed(n), 100_000).unwrap().outcome,
                Outcome::Value(expected),
                "even_typed({n})"
            );
        }
        // The untyped variant yields an *injected* boolean.
        match run(&even_untyped(4), 100_000).unwrap().outcome {
            Outcome::Value(Term::Cast(inner, _)) => assert_eq!(*inner, Term::bool(true)),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn boundary_loop_leaks_space_in_lambda_b() {
        // The λB space leak: peak cast count grows linearly with n.
        let small = run(&boundary_loop(8), 100_000).unwrap();
        let large = run(&boundary_loop(32), 100_000).unwrap();
        assert!(
            large.peak_casts >= small.peak_casts + 24,
            "expected linear cast growth, got {} -> {}",
            small.peak_casts,
            large.peak_casts
        );
    }

    #[test]
    fn typed_baseline_runs_in_constant_space() {
        let small = run(&even_typed(8), 100_000).unwrap();
        let large = run(&even_typed(64), 100_000).unwrap();
        assert_eq!(small.peak_casts, 0);
        assert_eq!(large.peak_casts, 0);
        assert_eq!(small.peak_size, large.peak_size);
    }

    #[test]
    fn wrapped_identity_returns_its_argument() {
        assert_eq!(
            run(&wrapped_identity(5), 100_000).unwrap().outcome,
            Outcome::Value(Term::int(0))
        );
    }
}
