//! Terms of the blame calculus (Figure 1).

use std::fmt;
use std::rc::Rc;

use bc_syntax::{Constant, Label, Name, Op, Type};

/// A cast annotation `A ⇒p B`: source type, blame label, target type.
///
/// The types must be compatible (`A ∼ B`) for the cast to be well
/// formed; this is enforced by the type checker, not the constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct Cast {
    /// The source type `A`.
    pub source: Type,
    /// The blame label `p` decorating the cast.
    pub label: Label,
    /// The target type `B`.
    pub target: Type,
}

impl Cast {
    /// Creates the cast annotation `source ⇒label target`.
    pub fn new(source: Type, label: Label, target: Type) -> Cast {
        Cast {
            source,
            label,
            target,
        }
    }
}

impl fmt::Display for Cast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ={}=> {}", self.source, self.label, self.target)
    }
}

/// Terms `L, M, N` of λB.
///
/// The grammar of Figure 1 — constants, operator applications,
/// variables, abstractions, applications, casts, and `blame p` —
/// extended with `if`, `let`, and `fix` as standard constructs (see
/// DESIGN.md §3). Subterms are reference counted so cloning during
/// substitution is cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A constant `k`.
    Const(Constant),
    /// An operator application `op(M₁, …, Mₙ)`.
    Op(Op, Vec<Term>),
    /// A variable `x`.
    Var(Name),
    /// An abstraction `λx:A. N`.
    Lam(Name, Type, Rc<Term>),
    /// An application `L M`.
    App(Rc<Term>, Rc<Term>),
    /// A cast `M : A ⇒p B`.
    Cast(Rc<Term>, Cast),
    /// Allocated blame `blame p`. Carries its type so that typing
    /// stays syntax-directed (the paper gives `blame p` every type).
    Blame(Label, Type),
    /// A conditional `if L then M else N`.
    If(Rc<Term>, Rc<Term>, Rc<Term>),
    /// A let binding `let x = M in N`.
    Let(Name, Rc<Term>, Rc<Term>),
    /// A recursive function `fix f (x:A):B. N`, a value of type
    /// `A → B`; `f` is bound to the whole `fix` in `N`.
    Fix(Name, Name, Type, Type, Rc<Term>),
}

impl Term {
    /// An integer constant.
    pub fn int(n: i64) -> Term {
        Term::Const(Constant::Int(n))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Term {
        Term::Const(Constant::Bool(b))
    }

    /// A variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Name::from(name))
    }

    /// An abstraction `λname:ty. body`.
    pub fn lam(name: &str, ty: Type, body: Term) -> Term {
        Term::Lam(Name::from(name), ty, Rc::new(body))
    }

    /// An application `self arg`.
    #[must_use]
    pub fn app(self, arg: Term) -> Term {
        Term::App(Rc::new(self), Rc::new(arg))
    }

    /// The cast `self : source ⇒label target`.
    #[must_use]
    pub fn cast(self, source: Type, label: Label, target: Type) -> Term {
        Term::Cast(Rc::new(self), Cast::new(source, label, target))
    }

    /// A binary operator application.
    pub fn op2(op: Op, lhs: Term, rhs: Term) -> Term {
        Term::Op(op, vec![lhs, rhs])
    }

    /// A conditional `if cond then then_ else else_`.
    pub fn ite(cond: Term, then_: Term, else_: Term) -> Term {
        Term::If(Rc::new(cond), Rc::new(then_), Rc::new(else_))
    }

    /// A let binding `let name = bound in body`.
    pub fn let_(name: &str, bound: Term, body: Term) -> Term {
        Term::Let(Name::from(name), Rc::new(bound), Rc::new(body))
    }

    /// A recursive function `fix fun (arg:dom):cod. body`.
    pub fn fix(fun: &str, arg: &str, dom: Type, cod: Type, body: Term) -> Term {
        Term::Fix(Name::from(fun), Name::from(arg), dom, cod, Rc::new(body))
    }

    /// Whether the term is a value `V` (Figure 1): a constant, an
    /// abstraction (or `fix`), a cast of a value between function
    /// types, or a cast of a value from a ground type to `?`.
    pub fn is_value(&self) -> bool {
        match self {
            Term::Const(_) | Term::Lam(_, _, _) | Term::Fix(_, _, _, _, _) => true,
            Term::Cast(m, c) => {
                m.is_value()
                    && match (&c.source, &c.target) {
                        (Type::Fun(_, _), Type::Fun(_, _)) => true,
                        (src, Type::Dyn) => src.is_ground(),
                        _ => false,
                    }
            }
            _ => false,
        }
    }

    /// The number of syntax nodes in the term (types not counted).
    pub fn size(&self) -> usize {
        match self {
            Term::Const(_) | Term::Var(_) | Term::Blame(_, _) => 1,
            Term::Op(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => 1 + b.size(),
            Term::Cast(m, _) => 1 + m.size(),
            Term::App(a, b) | Term::Let(_, a, b) => 1 + a.size() + b.size(),
            Term::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
        }
    }

    /// The number of cast nodes in the term — the quantity that grows
    /// without bound in the space-leak examples of §1.
    pub fn cast_count(&self) -> usize {
        match self {
            Term::Const(_) | Term::Var(_) | Term::Blame(_, _) => 0,
            Term::Op(_, args) => args.iter().map(Term::cast_count).sum(),
            Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => b.cast_count(),
            Term::Cast(m, _) => 1 + m.cast_count(),
            Term::App(a, b) | Term::Let(_, a, b) => a.cast_count() + b.cast_count(),
            Term::If(a, b, c) => a.cast_count() + b.cast_count() + c.cast_count(),
        }
    }

    /// Every blame label mentioned by a cast or `blame` node in the
    /// term, in syntactic order (with duplicates).
    pub fn labels(&self) -> Vec<Label> {
        fn go(t: &Term, out: &mut Vec<Label>) {
            match t {
                Term::Const(_) | Term::Var(_) => {}
                Term::Blame(p, _) => out.push(*p),
                Term::Op(_, args) => args.iter().for_each(|a| go(a, out)),
                Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => go(b, out),
                Term::Cast(m, c) => {
                    go(m, out);
                    out.push(c.label);
                }
                Term::App(a, b) | Term::Let(_, a, b) => {
                    go(a, out);
                    go(b, out);
                }
                Term::If(a, b, c) => {
                    go(a, out);
                    go(b, out);
                    go(c, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }
}

impl From<Constant> for Term {
    fn from(k: Constant) -> Term {
        Term::Const(k)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(k) => write!(f, "{k}"),
            Term::Var(x) => write!(f, "{x}"),
            Term::Op(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Term::Lam(x, ty, b) => write!(f, "(fun ({x} : {ty}) => {b})"),
            Term::App(a, b) => write!(f, "({a} {b})"),
            Term::Cast(m, c) => write!(f, "({m} : {c})"),
            Term::Blame(p, _) => write!(f, "blame {p}"),
            Term::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Term::Let(x, m, n) => write!(f, "(let {x} = {m} in {n})"),
            Term::Fix(g, x, dom, cod, b) => {
                write!(f, "(fix {g} ({x} : {dom}) : {cod} => {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::Label;

    #[test]
    fn value_recognition() {
        let p = Label::new(0);
        assert!(Term::int(1).is_value());
        assert!(Term::lam("x", Type::INT, Term::var("x")).is_value());
        // Injection from ground type is a value.
        assert!(Term::int(1).cast(Type::INT, p, Type::DYN).is_value());
        // Function-to-function cast of a value is a value.
        let id = Term::lam("x", Type::INT, Term::var("x"));
        let ii = Type::fun(Type::INT, Type::INT);
        assert!(id
            .clone()
            .cast(ii.clone(), p, Type::fun(Type::DYN, Type::INT))
            .is_value());
        // A base-to-base cast is a redex, not a value.
        assert!(!Term::int(1).cast(Type::INT, p, Type::INT).is_value());
        // A cast from a non-ground type to ? is a redex (it factors).
        assert!(!id.cast(ii, p, Type::DYN).is_value());
        // Applications are never values.
        assert!(!Term::var("f").app(Term::int(1)).is_value());
    }

    #[test]
    fn size_and_cast_count() {
        let p = Label::new(0);
        let m = Term::int(1)
            .cast(Type::INT, p, Type::DYN)
            .cast(Type::DYN, p, Type::INT);
        assert_eq!(m.size(), 3);
        assert_eq!(m.cast_count(), 2);
        assert_eq!(m.labels(), vec![p, p]);
    }

    #[test]
    fn display() {
        let p = Label::new(7);
        let m = Term::int(1).cast(Type::INT, p, Type::DYN);
        assert_eq!(m.to_string(), "(1 : Int =p7=> ?)");
    }
}
