//! Small-step reduction `M ⟶B N` for the blame calculus (Figure 1).
//!
//! The evaluator is substitution-based and follows the paper's
//! evaluation contexts exactly: left-to-right, call-by-value, with
//! casts evaluated under `E[□ : A ⇒p B]`. The rule
//! `E[blame p] ⟶ blame p` (for `E ≠ □`) aborts the whole program in a
//! single step, exactly as in the paper.
//!
//! [`run`] executes a closed, well-typed term to an [`Outcome`] with a
//! fuel bound (the divergence proxy) and records space metrics: the
//! peak term size and peak number of cast nodes. These are the
//! quantities that grow without bound in the space-leak examples of
//! §1 and stay bounded in λS. Ill-typed input and fuel exhaustion are
//! reported as the typed [`RunError`], never as panics or sentinel
//! outcomes.

use std::fmt;

use bc_syntax::{Constant, Label, Type};

use crate::subst::subst;
use crate::term::{Cast, Term};
use crate::typing::{type_of, TypeError};

/// The result of attempting one reduction step on a closed term.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `M ⟶B N`: the term took one step to `N`.
    Next(Term),
    /// The term is a value; no rule applies.
    Value,
    /// The term is `blame p`; evaluation has aborted.
    Blame(Label),
}

/// The final outcome of evaluating a term: every λB evaluation that
/// completes either converges to a value or allocates blame. Fuel
/// exhaustion is *not* an outcome — [`run`] reports it as the typed
/// error [`RunError::FuelExhausted`], so callers can never mistake a
/// truncated run for a completed one.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Evaluation converged to a value.
    Value(Term),
    /// Evaluation allocated blame to a label.
    Blame(Label),
}

impl Outcome {
    /// Whether this outcome is a value.
    pub fn is_value(&self) -> bool {
        matches!(self, Outcome::Value(_))
    }
}

/// Why a fueled run produced no [`Outcome`] — the typed replacement
/// for the `.expect("compiled well typed")` / sentinel-timeout pattern
/// on the run path.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The term is not closed and well typed; Figure 1's reduction
    /// rules are only defined on well-typed terms.
    IllTyped(TypeError),
    /// The fuel bound was reached; the term may diverge.
    FuelExhausted {
        /// Steps actually taken before fuel ran out (equals the fuel
        /// bound handed to [`run`]).
        steps: u64,
        /// The largest term size observed up to the cutoff — the
        /// truncated run's space measurement, so the λB cast-growth
        /// leak stays measurable on genuinely diverging programs.
        peak_size: usize,
        /// The largest number of cast nodes observed up to the cutoff.
        peak_casts: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::IllTyped(e) => write!(f, "ill-typed program: {e}"),
            RunError::FuelExhausted { steps, .. } => {
                write!(f, "fuel exhausted after {steps} steps")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<TypeError> for RunError {
    fn from(e: TypeError) -> RunError {
        RunError::IllTyped(e)
    }
}

/// Metrics and result of a fueled run.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The final outcome.
    pub outcome: Outcome,
    /// How many reduction steps were taken.
    pub steps: u64,
    /// The largest term size observed during evaluation.
    pub peak_size: usize,
    /// The largest number of cast nodes observed during evaluation.
    pub peak_casts: usize,
}

/// Result of reducing a subterm in evaluation position.
enum Sub {
    Stepped(Term),
    Value,
    Raise(Label),
}

/// Performs one reduction step on a closed, well-typed term.
///
/// `program_ty` is the type of the whole program; it becomes the type
/// annotation of the `blame` term produced when a cast fails (the
/// paper's `blame p` has every type; ours carries one for
/// syntax-directed typing).
///
/// # Panics
///
/// Panics if the term is open or ill-typed (use [`crate::typing::type_of`]
/// first); the reduction rules of Figure 1 are only defined on
/// well-typed terms.
pub fn step(term: &Term, program_ty: &Type) -> Step {
    if let Term::Blame(p, _) = term {
        return Step::Blame(*p);
    }
    if term.is_value() {
        return Step::Value;
    }
    match step_sub(term) {
        Sub::Stepped(t) => Step::Next(t),
        Sub::Raise(p) => Step::Next(Term::Blame(p, program_ty.clone())),
        Sub::Value => unreachable!("non-value term did not step: {term}"),
    }
}

fn step_sub(term: &Term) -> Sub {
    if term.is_value() {
        return Sub::Value;
    }
    match term {
        Term::Const(_) | Term::Lam(_, _, _) | Term::Fix(_, _, _, _, _) => Sub::Value,
        Term::Var(x) => panic!("evaluation reached a free variable `{x}`"),
        Term::Blame(p, _) => Sub::Raise(*p),
        Term::Op(op, args) => {
            for (i, arg) in args.iter().enumerate() {
                match step_sub(arg) {
                    Sub::Stepped(a2) => {
                        let mut args2 = args.clone();
                        args2[i] = a2;
                        return Sub::Stepped(Term::Op(*op, args2));
                    }
                    Sub::Raise(p) => return Sub::Raise(p),
                    Sub::Value => continue,
                }
            }
            let consts: Vec<Constant> = args
                .iter()
                .map(|a| match a {
                    Term::Const(k) => *k,
                    other => panic!("operator argument is not a constant: {other}"),
                })
                .collect();
            Sub::Stepped(Term::Const(op.apply(&consts)))
        }
        Term::If(cond, then_, else_) => match step_sub(cond) {
            Sub::Stepped(c2) => Sub::Stepped(Term::If(c2.into(), then_.clone(), else_.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => match &**cond {
                Term::Const(Constant::Bool(true)) => Sub::Stepped((**then_).clone()),
                Term::Const(Constant::Bool(false)) => Sub::Stepped((**else_).clone()),
                other => panic!("if condition is not a boolean: {other}"),
            },
        },
        Term::Let(x, m, n) => match step_sub(m) {
            Sub::Stepped(m2) => Sub::Stepped(Term::Let(x.clone(), m2.into(), n.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => Sub::Stepped(subst(n, x, m)),
        },
        Term::App(l, m) => match step_sub(l) {
            Sub::Stepped(l2) => Sub::Stepped(Term::App(l2.into(), m.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => match step_sub(m) {
                Sub::Stepped(m2) => Sub::Stepped(Term::App(l.clone(), m2.into())),
                Sub::Raise(p) => Sub::Raise(p),
                Sub::Value => apply(l, m),
            },
        },
        Term::Cast(m, c) => match step_sub(m) {
            Sub::Stepped(m2) => Sub::Stepped(Term::Cast(m2.into(), c.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => cast_value(m, c),
        },
    }
}

/// Contracts a β-redex or function-cast application; both arguments
/// are values.
fn apply(fun: &Term, arg: &Term) -> Sub {
    match fun {
        // (λx:A. N) V ⟶ N[x := V]
        Term::Lam(x, _, body) => Sub::Stepped(subst(body, x, arg)),
        // (fix f (x:A):B. N) V ⟶ N[f := fix …][x := V]
        Term::Fix(f, x, _, _, body) => {
            let unrolled = subst(body, f, fun);
            Sub::Stepped(subst(&unrolled, x, arg))
        }
        // (V : A→B ⇒p A'→B') W ⟶ (V (W : A' ⇒p̄ A)) : B ⇒p B'
        //
        // The domain cast is decorated with the complemented label:
        // function types are contravariant in their domain.
        Term::Cast(v, c) => match (&c.source, &c.target) {
            (Type::Fun(a, b), Type::Fun(a2, b2)) => {
                let domain_cast =
                    arg.clone()
                        .cast((**a2).clone(), c.label.complement(), (**a).clone());
                let applied = Term::App(v.clone(), domain_cast.into());
                Sub::Stepped(applied.cast((**b).clone(), c.label, (**b2).clone()))
            }
            _ => panic!("applied a non-function cast value: {fun}"),
        },
        other => panic!("applied a non-function value: {other}"),
    }
}

/// Reduces a cast whose subject is a value (and which is not itself a
/// value).
fn cast_value(value: &Term, cast: &Cast) -> Sub {
    let p = cast.label;
    match (&cast.source, &cast.target) {
        // V : ι ⇒p ι ⟶ V
        (Type::Base(a), Type::Base(b)) => {
            debug_assert_eq!(a, b, "ill-typed base cast");
            Sub::Stepped(value.clone())
        }
        // V : ? ⇒p ? ⟶ V
        (Type::Dyn, Type::Dyn) => Sub::Stepped(value.clone()),
        // V : A ⇒p ? ⟶ V : A ⇒p G ⇒p ?   (A ≠ ?, A ≠ G, A ∼ G)
        (a, Type::Dyn) => {
            let g = a.ground_of().expect("source is not ? here").ty();
            debug_assert!(!a.is_ground(), "injection from ground is a value");
            Sub::Stepped(
                value
                    .clone()
                    .cast(a.clone(), p, g.clone())
                    .cast(g, p, Type::Dyn),
            )
        }
        (Type::Dyn, a) => {
            match a.as_ground() {
                // The target is a ground type: the value must be an
                // injection `W : G ⇒q ?`.
                Some(h) => match value {
                    Term::Cast(w, inner) => {
                        let g = inner
                            .source
                            .as_ground()
                            .expect("value of type ? is an injection from ground");
                        if g == h {
                            // V : G ⇒q ? ⇒p G ⟶ V
                            Sub::Stepped((**w).clone())
                        } else {
                            // V : G ⇒q ? ⇒p H ⟶ blame p   (G ≠ H)
                            Sub::Raise(p)
                        }
                    }
                    other => panic!("value of type ? is not an injection: {other}"),
                },
                // V : ? ⇒p A ⟶ V : ? ⇒p G ⇒p A   (A ≠ ?, A ≠ G, A ∼ G)
                None => {
                    let g = a.ground_of().expect("target is not ? here").ty();
                    Sub::Stepped(
                        value
                            .clone()
                            .cast(Type::Dyn, p, g.clone())
                            .cast(g, p, a.clone()),
                    )
                }
            }
        }
        (a, b) => panic!("ill-typed cast from `{a}` to `{b}` reached evaluation"),
    }
}

/// Evaluates a closed, well-typed term for at most `fuel` steps.
///
/// # Errors
///
/// Returns [`RunError::IllTyped`] if the term is not closed and well
/// typed, and [`RunError::FuelExhausted`] (carrying the steps actually
/// taken) if the fuel bound is reached — ill-typedness and divergence
/// are distinguishable without inspecting a sentinel outcome.
pub fn run(term: &Term, fuel: u64) -> Result<Run, RunError> {
    let ty = type_of(term)?;
    let mut current = term.clone();
    let mut steps = 0u64;
    let mut peak_size = current.size();
    let mut peak_casts = current.cast_count();
    loop {
        match step(&current, &ty) {
            Step::Value => {
                return Ok(Run {
                    outcome: Outcome::Value(current),
                    steps,
                    peak_size,
                    peak_casts,
                })
            }
            Step::Blame(p) => {
                return Ok(Run {
                    outcome: Outcome::Blame(p),
                    steps,
                    peak_size,
                    peak_casts,
                })
            }
            Step::Next(next) => {
                // Charge fuel *before* committing the step, so a
                // zero-fuel run reports zero steps (values still
                // complete at any fuel: Step::Value returns above).
                if steps >= fuel {
                    return Err(RunError::FuelExhausted {
                        steps,
                        peak_size,
                        peak_casts,
                    });
                }
                steps += 1;
                peak_size = peak_size.max(next.size());
                peak_casts = peak_casts.max(next.cast_count());
                current = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{Ground, Label, Op};

    fn p(n: u32) -> Label {
        Label::new(n)
    }

    fn eval_value(term: &Term) -> Term {
        match run(term, 10_000).expect("well typed").outcome {
            Outcome::Value(v) => v,
            other => panic!("expected value, got {other:?}"),
        }
    }

    fn eval_blame(term: &Term) -> Label {
        match run(term, 10_000).expect("well typed").outcome {
            Outcome::Blame(l) => l,
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn beta_and_ops() {
        let t = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        )
        .app(Term::int(41));
        assert_eq!(eval_value(&t), Term::int(42));
    }

    #[test]
    fn identity_casts_vanish() {
        let t = Term::int(1).cast(Type::INT, p(0), Type::INT);
        assert_eq!(eval_value(&t), Term::int(1));
        let u = Term::int(1)
            .cast(Type::INT, p(0), Type::DYN)
            .cast(Type::DYN, p(1), Type::DYN);
        assert_eq!(
            eval_value(&u),
            Term::int(1).cast(Type::INT, p(0), Type::DYN)
        );
    }

    #[test]
    fn round_trip_through_dyn_succeeds() {
        let t = Term::int(7)
            .cast(Type::INT, p(0), Type::DYN)
            .cast(Type::DYN, p(1), Type::INT);
        assert_eq!(eval_value(&t), Term::int(7));
    }

    #[test]
    fn incompatible_projection_blames_outer_label() {
        let t = Term::int(7)
            .cast(Type::INT, p(0), Type::DYN)
            .cast(Type::DYN, p(1), Type::BOOL);
        assert_eq!(eval_blame(&t), p(1));
    }

    #[test]
    fn function_cast_wraps_and_defers() {
        // ((λx:?.x) : ?→? ⇒p Int→Int) 5 ⟶* 5
        let id = Term::lam("x", Type::DYN, Term::var("x"));
        let t = id
            .cast(Type::dyn_fun(), p(0), Type::fun(Type::INT, Type::INT))
            .app(Term::int(5));
        assert_eq!(eval_value(&t), Term::int(5));
    }

    #[test]
    fn function_cast_blames_domain_negatively() {
        // Cast (λx:Int.x) to ?→? and feed it a Bool: the domain cast
        // ? ⇒p̄ Int fails, blaming p̄ (the context supplied a bad
        // argument).
        let id = Term::lam("x", Type::INT, Term::var("x"));
        let ii = Type::fun(Type::INT, Type::INT);
        let t = id
            .cast(ii, p(0), Type::dyn_fun())
            .app(Term::bool(true).cast(Type::BOOL, p(9), Type::DYN));
        assert_eq!(eval_blame(&t), p(0).complement());
    }

    #[test]
    fn factoring_through_ground() {
        // Casting Int→Int to ? factors through ?→?; projecting back at
        // Int→Int recovers a usable function.
        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let ii = Type::fun(Type::INT, Type::INT);
        let t = inc
            .cast(ii.clone(), p(0), Type::DYN)
            .cast(Type::DYN, p(1), ii)
            .app(Term::int(1));
        assert_eq!(eval_value(&t), Term::int(2));
    }

    #[test]
    fn failure_lemma() {
        // Lemma 2: V : A ⇒p1 G ⇒p2 ? ⇒p3 H ⇒p4 B ⟶* blame p3
        // with A = Int→Int, G = ?→?, H = Bool, B = Bool.
        let v = Term::lam("x", Type::INT, Term::var("x"));
        let a = Type::fun(Type::INT, Type::INT);
        let g = Ground::Fun.ty();
        let h = Type::BOOL;
        let t = v
            .cast(a, p(1), g.clone())
            .cast(g, p(2), Type::DYN)
            .cast(Type::DYN, p(3), h.clone())
            .cast(h, p(4), Type::BOOL);
        assert_eq!(eval_blame(&t), p(3));
    }

    #[test]
    fn blame_aborts_in_one_step() {
        // E[blame p] ⟶ blame p, even under several layers of context.
        let inner = Term::Blame(p(5), Type::INT);
        let t = Term::op2(
            Op::Add,
            Term::int(1),
            Term::op2(Op::Add, inner, Term::int(2)),
        );
        let ty = type_of(&t).unwrap();
        match step(&t, &ty) {
            Step::Next(Term::Blame(l, _)) => assert_eq!(l, p(5)),
            other => panic!("expected blame step, got {other:?}"),
        }
    }

    #[test]
    fn fix_unrolls() {
        // fix f (n:Int):Int. if n = 0 then 0 else f (n - 1), applied to 5.
        let body = Term::ite(
            Term::op2(Op::Eq, Term::var("n"), Term::int(0)),
            Term::int(0),
            Term::var("f").app(Term::op2(Op::Sub, Term::var("n"), Term::int(1))),
        );
        let t = Term::fix("f", "n", Type::INT, Type::INT, body).app(Term::int(5));
        assert_eq!(eval_value(&t), Term::int(0));
    }

    #[test]
    fn divergence_exhausts_fuel_with_the_real_step_count() {
        // (fix f (n:Int):Int. f n) 0 diverges.
        let t = Term::fix(
            "f",
            "n",
            Type::INT,
            Type::INT,
            Term::var("f").app(Term::var("n")),
        )
        .app(Term::int(0));
        match run(&t, 50) {
            Err(RunError::FuelExhausted {
                steps, peak_size, ..
            }) => {
                assert_eq!(steps, 50);
                assert!(peak_size > 0, "the truncated run reports its space peaks");
            }
            other => panic!("expected FuelExhausted, got {other:?}"),
        }
        // Zero fuel charges zero steps (but a value still completes).
        assert!(matches!(
            run(&t, 0),
            Err(RunError::FuelExhausted { steps: 0, .. })
        ));
        assert!(run(&Term::int(1), 0).is_ok());
    }

    #[test]
    fn ill_typed_terms_report_a_typed_error() {
        let t = Term::int(1).app(Term::int(2));
        match run(&t, 50) {
            Err(RunError::IllTyped(_)) => {}
            other => panic!("expected IllTyped, got {other:?}"),
        }
    }

    #[test]
    fn preservation_along_a_run() {
        // Types are preserved step by step on a representative program.
        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let ii = Type::fun(Type::INT, Type::INT);
        let mut t = inc
            .cast(ii.clone(), p(0), Type::DYN)
            .cast(Type::DYN, p(1), ii)
            .app(Term::int(1));
        let ty = type_of(&t).unwrap();
        while let Step::Next(n) = step(&t, &ty) {
            assert_eq!(type_of(&n), Ok(ty.clone()), "preservation at {n}");
            t = n;
        }
    }

    #[test]
    fn determinism() {
        // step is a function; two invocations agree.
        let t = Term::int(7)
            .cast(Type::INT, p(0), Type::DYN)
            .cast(Type::DYN, p(1), Type::INT);
        let ty = type_of(&t).unwrap();
        assert_eq!(step(&t, &ty), step(&t, &ty));
    }
}
