//! Blame safety `M safeB q` (Figure 2).
//!
//! A term is safe for a blame label `q` when evaluating it can never
//! allocate blame to `q`. Safety of a term is defined cast-wise: every
//! cast `A ⇒p B` in the term must be safe for `q`, which holds when
//! `A <:+ B` (for `q = p`), when `A <:- B` (for `q = p̄`), or when `q`
//! is unrelated to `p` altogether. A literal `blame p` subterm is safe
//! for every `q ≠ p`.
//!
//! Proposition 5 (preservation + progress for safety) is validated by
//! the property tests in `bc-translate` over random well-typed terms;
//! unit tests here cover the canonical cases.

use bc_syntax::subtype::cast_safe_for;
use bc_syntax::Label;

use crate::term::Term;

/// Whether the cast `A ⇒p B` is safe for `q` — re-exported from
/// [`bc_syntax::subtype::cast_safe_for`] under the λB-centric name.
pub use bc_syntax::subtype::cast_safe_for as cast_safe;

/// Whether `M safeB q`: every cast in `M` is safe for `q` and no
/// `blame q` occurs literally in `M`.
pub fn term_safe_for(term: &Term, q: Label) -> bool {
    match term {
        Term::Const(_) | Term::Var(_) => true,
        Term::Blame(p, _) => *p != q,
        Term::Op(_, args) => args.iter().all(|a| term_safe_for(a, q)),
        Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => term_safe_for(b, q),
        Term::Cast(m, c) => term_safe_for(m, q) && cast_safe_for(&c.source, c.label, &c.target, q),
        Term::App(a, b) | Term::Let(_, a, b) => term_safe_for(a, q) && term_safe_for(b, q),
        Term::If(a, b, c) => term_safe_for(a, q) && term_safe_for(b, q) && term_safe_for(c, q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run, Outcome};
    use bc_syntax::{Label, Type};

    #[test]
    fn upcast_is_safe_for_its_own_label() {
        // Int ⇒p ? is an injection: A <:+ ?, so safe for p.
        let p = Label::new(0);
        let m = crate::term::Term::int(1).cast(Type::INT, p, Type::DYN);
        assert!(term_safe_for(&m, p));
        assert!(term_safe_for(&m, p.complement()));
    }

    #[test]
    fn projection_is_safe_for_its_complement_only() {
        let p = Label::new(0);
        let q = Label::new(1);
        let m = crate::term::Term::int(1)
            .cast(Type::INT, p, Type::DYN)
            .cast(Type::DYN, q, Type::BOOL);
        // ? <:- Bool, so the projection is safe for q̄ but not q.
        assert!(!term_safe_for(&m, q));
        assert!(term_safe_for(&m, q.complement()));
        assert!(term_safe_for(&m, p));
    }

    #[test]
    fn safety_predicts_the_blamed_label() {
        // "Well-typed programs can't be blamed": whatever label gets
        // blamed, the term must not have been safe for it.
        let p = Label::new(0);
        let q = Label::new(1);
        let m = crate::term::Term::int(1)
            .cast(Type::INT, p, Type::DYN)
            .cast(Type::DYN, q, Type::BOOL);
        match run(&m, 100).unwrap().outcome {
            Outcome::Blame(l) => assert!(!term_safe_for(&m, l)),
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn literal_blame_is_unsafe_for_its_label() {
        let p = Label::new(3);
        let m = Term::Blame(p, Type::INT);
        assert!(!term_safe_for(&m, p));
        assert!(term_safe_for(&m, p.complement()));
    }
}
