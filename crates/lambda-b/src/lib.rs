//! The blame calculus λB (Figure 1 of Siek–Thiemann–Wadler, PLDI 2015;
//! after Wadler–Findler 2009).
//!
//! λB is simply-typed λ-calculus extended with *casts*
//! `M : A ⇒p B` between compatible types and a `blame p` term. A cast
//! mediates between more- and less-precisely typed code; if it fails
//! at run time, blame is allocated to one side of the cast: to `p`
//! (*positive*, the term inside the cast is at fault) or to `p̄`
//! (*negative*, the context is at fault).
//!
//! The crate provides:
//!
//! * [`Term`] — the syntax of Figure 1 (plus `if`/`let`/`fix` as
//!   standard constructs);
//! * [`typing`] — the type system `Γ ⊢B M : A`;
//! * [`eval`] — the small-step reduction relation `M ⟶B N`, with
//!   space instrumentation;
//! * [`safety`] — blame safety `M safeB q` (Figure 2);
//! * [`embed`] — the embedding `⌈·⌉` of dynamically-typed λ-calculus.
//!
//! # Example
//!
//! A well-typed cast that fails, blaming the label of the projection:
//!
//! ```
//! use bc_lambda_b::{eval::{run, Outcome}, Term};
//! use bc_syntax::{Label, Type};
//!
//! let p = Label::new(0);
//! let q = Label::new(1);
//! // (1 : Int ⇒p ?) : ? ⇒q Bool
//! let m = Term::int(1).cast(Type::INT, p, Type::DYN).cast(Type::DYN, q, Type::BOOL);
//! let result = run(&m, 100).expect("well typed");
//! assert_eq!(result.outcome, Outcome::Blame(q));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bterm;
pub mod embed;
pub mod eval;
pub mod programs;
pub mod safety;
pub mod subst;
pub mod term;
pub mod typing;

pub use bterm::{type_of_compiled, BTerm};
pub use term::{Cast, Term};
pub use typing::{type_of, type_of_interned, TypeError};
