//! The compiled (id-annotated) form of λB terms.
//!
//! [`BTerm`] mirrors [`Term`] node for node but carries
//! `Copy` [`TypeId`] handles into a [`TypeArena`] instead of `Rc<Type>`
//! trees: a cast is `Cast(M, A, p, B)` with interned endpoints, a
//! lambda annotation is a single id. The spine is `Arc`, and every
//! payload (`Name = Arc<str>`, ids, labels, constants) is `Send`, so a
//! compiled program can travel to another thread — this is what lets
//! `SessionPool` ship warmup's compile work to workers instead of
//! source text.
//!
//! # The id-offset / foreign-id contract
//!
//! A `BTerm` is only meaningful *relative to the arena its ids were
//! interned in*. The ids inherit the two-tier offset contract of
//! [`TypeArena`]: ids **below the frozen-base length** are portable to
//! any arena built over the same [`FrozenTypes`](bc_syntax::FrozenTypes)
//! base (this is how compiled pool jobs work — warmup compiles before
//! the freeze, so every id in a shipped `BTerm` is a base id every
//! worker resolves identically); ids **at or above** the base length
//! are private to the arena that created them, and handing such a term
//! to a session with a different local tail is a logic error the type
//! checker cannot detect (ids are plain integers). Sessions enforce
//! this with watermarks ([`Session::adopt`]-style ancestry checks) —
//! the IR itself stays unchecked and cheap.
//!
//! [`compile`] and [`decompile`] convert between the tree and compiled
//! forms (`decompile ∘ compile = id`, pinned by property test), and
//! [`type_of_compiled`] is the PR-4 interned checker retargeted to
//! check the compiled form *in place* — no tree is ever built on the
//! checking path.
//!
//! [`Session::adopt`]: https://docs.rs/-/-/ (see `blame-coercion` session docs)

use std::sync::Arc;

use bc_syntax::{Constant, Label, Name, Op, TNode, Type, TypeArena, TypeId};

use crate::term::{Cast, Term};
use crate::typing::TypeError;

/// Compiled λB terms: [`Term`] with every type annotation
/// replaced by an interned [`TypeId`].
///
/// See the [module docs](self) for the id-offset contract.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BTerm {
    /// A constant `k`.
    Const(Constant),
    /// An operator application `op(M₁, …, Mₙ)`.
    Op(Op, Vec<BTerm>),
    /// A variable `x`.
    Var(Name),
    /// An abstraction `λx:A. N` with an interned annotation.
    Lam(Name, TypeId, Arc<BTerm>),
    /// An application `L M`.
    App(Arc<BTerm>, Arc<BTerm>),
    /// A cast `M : A ⇒p B` with interned endpoints.
    Cast(Arc<BTerm>, TypeId, Label, TypeId),
    /// Allocated blame `blame p`, carrying its interned type.
    Blame(Label, TypeId),
    /// A conditional `if L then M else N`.
    If(Arc<BTerm>, Arc<BTerm>, Arc<BTerm>),
    /// A let binding `let x = M in N`.
    Let(Name, Arc<BTerm>, Arc<BTerm>),
    /// A recursive function `fix f (x:A):B. N` with interned domain
    /// and codomain.
    Fix(Name, Name, TypeId, TypeId, Arc<BTerm>),
}

impl BTerm {
    /// The number of syntax nodes in the term (ids not counted), equal
    /// to [`Term::size`] of the decompiled tree.
    pub fn size(&self) -> usize {
        match self {
            BTerm::Const(_) | BTerm::Var(_) | BTerm::Blame(_, _) => 1,
            BTerm::Op(_, args) => 1 + args.iter().map(BTerm::size).sum::<usize>(),
            BTerm::Lam(_, _, b) | BTerm::Fix(_, _, _, _, b) => 1 + b.size(),
            BTerm::Cast(m, _, _, _) => 1 + m.size(),
            BTerm::App(a, b) | BTerm::Let(_, a, b) => 1 + a.size() + b.size(),
            BTerm::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
        }
    }

    /// The number of cast nodes, equal to [`Term::cast_count`] of the
    /// decompiled tree.
    pub fn cast_count(&self) -> usize {
        match self {
            BTerm::Const(_) | BTerm::Var(_) | BTerm::Blame(_, _) => 0,
            BTerm::Op(_, args) => args.iter().map(BTerm::cast_count).sum(),
            BTerm::Lam(_, _, b) | BTerm::Fix(_, _, _, _, b) => b.cast_count(),
            BTerm::Cast(m, _, _, _) => 1 + m.cast_count(),
            BTerm::App(a, b) | BTerm::Let(_, a, b) => a.cast_count() + b.cast_count(),
            BTerm::If(a, b, c) => a.cast_count() + b.cast_count() + c.cast_count(),
        }
    }
}

/// Lowers a tree term into the compiled form, interning every type
/// annotation into `types` (idempotent in a warm arena).
pub fn compile(term: &Term, types: &mut TypeArena) -> BTerm {
    match term {
        Term::Const(k) => BTerm::Const(*k),
        Term::Op(op, args) => BTerm::Op(*op, args.iter().map(|a| compile(a, types)).collect()),
        Term::Var(x) => BTerm::Var(x.clone()),
        Term::Lam(x, ty, b) => BTerm::Lam(x.clone(), types.intern(ty), compile(b, types).into()),
        Term::App(a, b) => BTerm::App(compile(a, types).into(), compile(b, types).into()),
        Term::Cast(m, c) => BTerm::Cast(
            compile(m, types).into(),
            types.intern(&c.source),
            c.label,
            types.intern(&c.target),
        ),
        Term::Blame(p, ty) => BTerm::Blame(*p, types.intern(ty)),
        Term::If(c, t, e) => BTerm::If(
            compile(c, types).into(),
            compile(t, types).into(),
            compile(e, types).into(),
        ),
        Term::Let(x, m, n) => BTerm::Let(
            x.clone(),
            compile(m, types).into(),
            compile(n, types).into(),
        ),
        Term::Fix(f, x, dom, cod, b) => BTerm::Fix(
            f.clone(),
            x.clone(),
            types.intern(dom),
            types.intern(cod),
            compile(b, types).into(),
        ),
    }
}

/// Rebuilds the tree form by resolving every id through the arena.
///
/// Inverse of [`compile`]: `decompile(compile(t)) = t` for all `t`
/// (the ids must belong to `types` per the module contract).
pub fn decompile(term: &BTerm, types: &TypeArena) -> Term {
    match term {
        BTerm::Const(k) => Term::Const(*k),
        BTerm::Op(op, args) => Term::Op(*op, args.iter().map(|a| decompile(a, types)).collect()),
        BTerm::Var(x) => Term::Var(x.clone()),
        BTerm::Lam(x, ty, b) => {
            Term::Lam(x.clone(), types.resolve(*ty), decompile(b, types).into())
        }
        BTerm::App(a, b) => Term::App(decompile(a, types).into(), decompile(b, types).into()),
        BTerm::Cast(m, src, p, tgt) => Term::Cast(
            decompile(m, types).into(),
            Cast::new(types.resolve(*src), *p, types.resolve(*tgt)),
        ),
        BTerm::Blame(p, ty) => Term::Blame(*p, types.resolve(*ty)),
        BTerm::If(c, t, e) => Term::If(
            decompile(c, types).into(),
            decompile(t, types).into(),
            decompile(e, types).into(),
        ),
        BTerm::Let(x, m, n) => Term::Let(
            x.clone(),
            decompile(m, types).into(),
            decompile(n, types).into(),
        ),
        BTerm::Fix(f, x, dom, cod, b) => Term::Fix(
            f.clone(),
            x.clone(),
            types.resolve(*dom),
            types.resolve(*cod),
            decompile(b, types).into(),
        ),
    }
}

/// Checks a compiled term in place: `⊢B M : A` on ids, never building
/// a tree and never interning (annotations already *are* ids).
///
/// Agrees with [`type_of`](crate::type_of) on the decompiled tree:
/// same verdict, `types.resolve(id)` of the result is the tree type,
/// and errors carry the same [`TypeError`] (tree types in errors are
/// resolved through the arena's shared-resolve memo).
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not well typed.
pub fn type_of_compiled(term: &BTerm, types: &mut TypeArena) -> Result<TypeId, TypeError> {
    type_of_compiled_in(&mut Vec::new(), term, types)
}

/// Checks a compiled term in an interned environment.
///
/// # Errors
///
/// See [`type_of_compiled`].
pub fn type_of_compiled_in(
    env: &mut Vec<(Name, TypeId)>,
    term: &BTerm,
    types: &mut TypeArena,
) -> Result<TypeId, TypeError> {
    match term {
        BTerm::Const(k) => Ok(types.base(k.base_type())),
        BTerm::Var(x) => env
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| *t)
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        BTerm::Op(op, args) => {
            let (params, result) = op.signature();
            if params.len() != args.len() {
                return Err(TypeError::OpArity {
                    op: op.name(),
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in params.iter().zip(args) {
                let found = type_of_compiled_in(env, arg, types)?;
                if found != types.base(*param) {
                    return Err(TypeError::Mismatch {
                        expected: param.ty(),
                        found: types.resolve_shared(found),
                        context: "operator argument",
                    });
                }
            }
            Ok(types.base(result))
        }
        BTerm::Lam(x, dom, body) => {
            env.push((x.clone(), *dom));
            let cod = type_of_compiled_in(env, body, types);
            env.pop();
            Ok(types.fun(*dom, cod?))
        }
        BTerm::App(l, m) => {
            let lt = type_of_compiled_in(env, l, types)?;
            let mt = type_of_compiled_in(env, m, types)?;
            match types.node(lt) {
                TNode::Fun(dom, cod) => {
                    if dom == mt {
                        Ok(cod)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: types.resolve_shared(dom),
                            found: types.resolve_shared(mt),
                            context: "function argument",
                        })
                    }
                }
                _ => Err(TypeError::NotAFunction(types.resolve_shared(lt))),
            }
        }
        BTerm::Cast(m, source, _, target) => {
            let mt = type_of_compiled_in(env, m, types)?;
            if mt != *source {
                return Err(TypeError::Mismatch {
                    expected: types.resolve_shared(*source),
                    found: types.resolve_shared(mt),
                    context: "cast source",
                });
            }
            if !types.compatible(*source, *target) {
                return Err(TypeError::Incompatible(
                    types.resolve_shared(*source),
                    types.resolve_shared(*target),
                ));
            }
            Ok(*target)
        }
        BTerm::Blame(_, ty) => Ok(*ty),
        BTerm::If(cond, then_, else_) => {
            let ct = type_of_compiled_in(env, cond, types)?;
            if ct != types.base(bc_syntax::BaseType::Bool) {
                return Err(TypeError::Mismatch {
                    expected: Type::BOOL,
                    found: types.resolve_shared(ct),
                    context: "if condition",
                });
            }
            let tt = type_of_compiled_in(env, then_, types)?;
            let et = type_of_compiled_in(env, else_, types)?;
            if tt != et {
                return Err(TypeError::Mismatch {
                    expected: types.resolve_shared(tt),
                    found: types.resolve_shared(et),
                    context: "if branches",
                });
            }
            Ok(tt)
        }
        BTerm::Let(x, m, n) => {
            let mt = type_of_compiled_in(env, m, types)?;
            env.push((x.clone(), mt));
            let nt = type_of_compiled_in(env, n, types);
            env.pop();
            nt
        }
        BTerm::Fix(f, x, dom, cod, body) => {
            let fun_id = types.fun(*dom, *cod);
            env.push((f.clone(), fun_id));
            env.push((x.clone(), *dom));
            let bt = type_of_compiled_in(env, body, types);
            env.pop();
            env.pop();
            let bt = bt?;
            if bt != *cod {
                return Err(TypeError::Mismatch {
                    expected: types.resolve_shared(*cod),
                    found: types.resolve_shared(bt),
                    context: "fix body",
                });
            }
            Ok(fun_id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::type_of;
    use bc_syntax::Label;

    fn samples() -> Vec<Term> {
        let p = Label::new(0);
        let ii = Type::fun(Type::INT, Type::INT);
        vec![
            Term::int(1)
                .cast(Type::INT, p, Type::DYN)
                .cast(Type::DYN, p.complement(), Type::BOOL),
            Term::lam("x", Type::INT, Term::var("x")).app(Term::int(2)),
            Term::fix(
                "f",
                "x",
                Type::INT,
                Type::INT,
                Term::ite(
                    Term::op2(bc_syntax::Op::Eq, Term::var("x"), Term::int(0)),
                    Term::int(1),
                    Term::var("f").app(Term::op2(bc_syntax::Op::Sub, Term::var("x"), Term::int(1))),
                ),
            ),
            Term::let_(
                "g",
                Term::lam("x", Type::DYN, Term::var("x")).cast(
                    Type::fun(Type::DYN, Type::DYN),
                    p,
                    ii,
                ),
                Term::var("g").app(Term::int(3)),
            ),
            Term::Blame(p, Type::BOOL),
        ]
    }

    #[test]
    fn compile_round_trips() {
        let mut types = TypeArena::new();
        for t in samples() {
            let compiled = compile(&t, &mut types);
            assert_eq!(decompile(&compiled, &types), t, "{t}");
            assert_eq!(compiled.size(), t.size());
            assert_eq!(compiled.cast_count(), t.cast_count());
        }
    }

    #[test]
    fn compiled_checker_agrees_with_the_tree_checker() {
        let mut types = TypeArena::new();
        for t in samples() {
            let compiled = compile(&t, &mut types);
            match (type_of(&t), type_of_compiled(&compiled, &mut types)) {
                (Ok(tree_ty), Ok(id)) => assert_eq!(types.resolve(id), tree_ty, "{t}"),
                (Err(e1), Err(e2)) => assert_eq!(e1, e2, "{t}"),
                (tree, compiled) => panic!("{t}: tree {tree:?} vs compiled {compiled:?}"),
            }
        }
    }

    #[test]
    fn recompiling_interns_nothing_new() {
        let mut types = TypeArena::new();
        for t in samples() {
            compile(&t, &mut types);
        }
        let warm = types.len();
        for t in samples() {
            compile(&t, &mut types);
        }
        assert_eq!(types.len(), warm);
    }
}
