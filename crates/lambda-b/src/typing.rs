//! The type system `Γ ⊢B M : A` of the blame calculus (Figure 1).

use std::fmt;

use bc_syntax::{Name, TNode, Type, TypeArena, TypeId};

use crate::term::Term;

/// A typing error, produced when a term is not well typed.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A variable was not bound in the environment.
    UnboundVariable(Name),
    /// An operator was applied to the wrong number of arguments.
    OpArity {
        /// The operator's name.
        op: &'static str,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
    /// A term had a different type than required by its context.
    Mismatch {
        /// The type required by the context.
        expected: Type,
        /// The type the term actually has.
        found: Type,
        /// What was being checked (for diagnostics).
        context: &'static str,
    },
    /// The function position of an application was not a function.
    NotAFunction(Type),
    /// A cast between incompatible types (`A ≁ B`).
    Incompatible(Type, Type),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::OpArity {
                op,
                expected,
                found,
            } => write!(
                f,
                "operator `{op}` expects {expected} arguments, found {found}"
            ),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected `{expected}`, found `{found}`"
            ),
            TypeError::NotAFunction(t) => write!(f, "cannot apply a term of type `{t}`"),
            TypeError::Incompatible(a, b) => {
                write!(f, "cast between incompatible types `{a}` and `{b}`")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// A type environment `Γ`: a stack of variable bindings.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    bindings: Vec<(Name, Type)>,
}

impl TypeEnv {
    /// The empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Looks up the innermost binding of `x`.
    pub fn lookup(&self, x: &Name) -> Option<&Type> {
        self.bindings
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t)
    }

    /// Pushes a binding, returning a guard-free handle (callers pop
    /// with [`TypeEnv::pop`]).
    pub fn push(&mut self, x: Name, t: Type) {
        self.bindings.push((x, t));
    }

    /// Pops the innermost binding.
    pub fn pop(&mut self) {
        self.bindings.pop();
    }
}

/// Computes the type of a closed term: `⊢B M : A`.
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not well typed.
pub fn type_of(term: &Term) -> Result<Type, TypeError> {
    type_of_in(&mut TypeEnv::new(), term)
}

/// Computes the type of a term in an environment: `Γ ⊢B M : A`.
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not well typed.
pub fn type_of_in(env: &mut TypeEnv, term: &Term) -> Result<Type, TypeError> {
    match term {
        Term::Const(k) => Ok(k.base_type().ty()),
        Term::Var(x) => env
            .lookup(x)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        Term::Op(op, args) => {
            let (params, result) = op.signature();
            if params.len() != args.len() {
                return Err(TypeError::OpArity {
                    op: op.name(),
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in params.iter().zip(args) {
                let found = type_of_in(env, arg)?;
                if found != param.ty() {
                    return Err(TypeError::Mismatch {
                        expected: param.ty(),
                        found,
                        context: "operator argument",
                    });
                }
            }
            Ok(result.ty())
        }
        Term::Lam(x, dom, body) => {
            env.push(x.clone(), dom.clone());
            let cod = type_of_in(env, body);
            env.pop();
            Ok(Type::fun(dom.clone(), cod?))
        }
        Term::App(l, m) => {
            let lt = type_of_in(env, l)?;
            let mt = type_of_in(env, m)?;
            match lt {
                Type::Fun(dom, cod) => {
                    if *dom == mt {
                        Ok((*cod).clone())
                    } else {
                        Err(TypeError::Mismatch {
                            expected: (*dom).clone(),
                            found: mt,
                            context: "function argument",
                        })
                    }
                }
                other => Err(TypeError::NotAFunction(other)),
            }
        }
        Term::Cast(m, c) => {
            let mt = type_of_in(env, m)?;
            if mt != c.source {
                return Err(TypeError::Mismatch {
                    expected: c.source.clone(),
                    found: mt,
                    context: "cast source",
                });
            }
            if !c.source.compatible(&c.target) {
                return Err(TypeError::Incompatible(c.source.clone(), c.target.clone()));
            }
            Ok(c.target.clone())
        }
        Term::Blame(_, ty) => Ok(ty.clone()),
        Term::If(cond, then_, else_) => {
            let ct = type_of_in(env, cond)?;
            if ct != Type::BOOL {
                return Err(TypeError::Mismatch {
                    expected: Type::BOOL,
                    found: ct,
                    context: "if condition",
                });
            }
            let tt = type_of_in(env, then_)?;
            let et = type_of_in(env, else_)?;
            if tt != et {
                return Err(TypeError::Mismatch {
                    expected: tt,
                    found: et,
                    context: "if branches",
                });
            }
            Ok(tt)
        }
        Term::Let(x, m, n) => {
            let mt = type_of_in(env, m)?;
            env.push(x.clone(), mt);
            let nt = type_of_in(env, n);
            env.pop();
            nt
        }
        Term::Fix(f, x, dom, cod, body) => {
            let fun_ty = Type::fun(dom.clone(), cod.clone());
            env.push(f.clone(), fun_ty.clone());
            env.push(x.clone(), dom.clone());
            let bt = type_of_in(env, body);
            env.pop();
            env.pop();
            let bt = bt?;
            if bt != *cod {
                return Err(TypeError::Mismatch {
                    expected: cod.clone(),
                    found: bt,
                    context: "fix body",
                });
            }
            Ok(fun_ty)
        }
    }
}

/// Computes the type of a closed term against a caller-owned
/// [`TypeArena`]: the interned fast path of [`type_of`].
///
/// Every annotation is interned once (idempotent in a warm arena),
/// the environment holds [`TypeId`]s, and every comparison the tree
/// checker does structurally — argument against domain, branch
/// against branch, cast source against subject — is an O(1) id
/// equality; cast well-formedness goes through the arena's memoized
/// [`TypeArena::compatible`]. Agreement with [`type_of`] (same
/// verdict, same resolved type, same [`TypeError`]) is validated by
/// property test.
///
/// # Errors
///
/// Returns the same [`TypeError`] [`type_of`] would (tree types in
/// errors are resolved through the arena's shared-resolve memo).
pub fn type_of_interned(term: &Term, types: &mut TypeArena) -> Result<TypeId, TypeError> {
    type_of_interned_in(&mut Vec::new(), term, types)
}

/// Computes the type of a term in an interned environment:
/// `Γ ⊢B M : A` on [`TypeId`]s.
///
/// # Errors
///
/// See [`type_of_interned`].
pub fn type_of_interned_in(
    env: &mut Vec<(Name, TypeId)>,
    term: &Term,
    types: &mut TypeArena,
) -> Result<TypeId, TypeError> {
    match term {
        Term::Const(k) => Ok(types.base(k.base_type())),
        Term::Var(x) => env
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| *t)
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        Term::Op(op, args) => {
            let (params, result) = op.signature();
            if params.len() != args.len() {
                return Err(TypeError::OpArity {
                    op: op.name(),
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in params.iter().zip(args) {
                let found = type_of_interned_in(env, arg, types)?;
                if found != types.base(*param) {
                    return Err(TypeError::Mismatch {
                        expected: param.ty(),
                        found: types.resolve_shared(found),
                        context: "operator argument",
                    });
                }
            }
            Ok(types.base(result))
        }
        Term::Lam(x, dom, body) => {
            let dom_id = types.intern(dom);
            env.push((x.clone(), dom_id));
            let cod = type_of_interned_in(env, body, types);
            env.pop();
            Ok(types.fun(dom_id, cod?))
        }
        Term::App(l, m) => {
            let lt = type_of_interned_in(env, l, types)?;
            let mt = type_of_interned_in(env, m, types)?;
            match types.node(lt) {
                TNode::Fun(dom, cod) => {
                    if dom == mt {
                        Ok(cod)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: types.resolve_shared(dom),
                            found: types.resolve_shared(mt),
                            context: "function argument",
                        })
                    }
                }
                _ => Err(TypeError::NotAFunction(types.resolve_shared(lt))),
            }
        }
        Term::Cast(m, c) => {
            let mt = type_of_interned_in(env, m, types)?;
            let source = types.intern(&c.source);
            if mt != source {
                return Err(TypeError::Mismatch {
                    expected: c.source.clone(),
                    found: types.resolve_shared(mt),
                    context: "cast source",
                });
            }
            let target = types.intern(&c.target);
            if !types.compatible(source, target) {
                return Err(TypeError::Incompatible(c.source.clone(), c.target.clone()));
            }
            Ok(target)
        }
        Term::Blame(_, ty) => Ok(types.intern(ty)),
        Term::If(cond, then_, else_) => {
            let ct = type_of_interned_in(env, cond, types)?;
            if ct != types.base(bc_syntax::BaseType::Bool) {
                return Err(TypeError::Mismatch {
                    expected: Type::BOOL,
                    found: types.resolve_shared(ct),
                    context: "if condition",
                });
            }
            let tt = type_of_interned_in(env, then_, types)?;
            let et = type_of_interned_in(env, else_, types)?;
            if tt != et {
                return Err(TypeError::Mismatch {
                    expected: types.resolve_shared(tt),
                    found: types.resolve_shared(et),
                    context: "if branches",
                });
            }
            Ok(tt)
        }
        Term::Let(x, m, n) => {
            let mt = type_of_interned_in(env, m, types)?;
            env.push((x.clone(), mt));
            let nt = type_of_interned_in(env, n, types);
            env.pop();
            nt
        }
        Term::Fix(f, x, dom, cod, body) => {
            let dom_id = types.intern(dom);
            let cod_id = types.intern(cod);
            let fun_id = types.fun(dom_id, cod_id);
            env.push((f.clone(), fun_id));
            env.push((x.clone(), dom_id));
            let bt = type_of_interned_in(env, body, types);
            env.pop();
            env.pop();
            let bt = bt?;
            if bt != cod_id {
                return Err(TypeError::Mismatch {
                    expected: cod.clone(),
                    found: types.resolve_shared(bt),
                    context: "fix body",
                });
            }
            Ok(fun_id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{Label, Op};

    #[test]
    fn constants_and_ops() {
        assert_eq!(type_of(&Term::int(1)), Ok(Type::INT));
        assert_eq!(
            type_of(&Term::op2(Op::Add, Term::int(1), Term::int(2))),
            Ok(Type::INT)
        );
        assert_eq!(
            type_of(&Term::op2(Op::Lt, Term::int(1), Term::int(2))),
            Ok(Type::BOOL)
        );
        assert!(matches!(
            type_of(&Term::op2(Op::Add, Term::int(1), Term::bool(true))),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn lambda_and_application() {
        let id = Term::lam("x", Type::INT, Term::var("x"));
        assert_eq!(type_of(&id), Ok(Type::fun(Type::INT, Type::INT)));
        assert_eq!(type_of(&id.clone().app(Term::int(1))), Ok(Type::INT));
        assert!(matches!(
            type_of(&id.app(Term::bool(true))),
            Err(TypeError::Mismatch { .. })
        ));
        assert!(matches!(
            type_of(&Term::int(1).app(Term::int(2))),
            Err(TypeError::NotAFunction(_))
        ));
    }

    #[test]
    fn cast_typing() {
        let p = Label::new(0);
        let m = Term::int(1).cast(Type::INT, p, Type::DYN);
        assert_eq!(type_of(&m), Ok(Type::DYN));
        // Incompatible cast is rejected.
        let bad = Term::int(1).cast(Type::INT, p, Type::BOOL);
        assert_eq!(
            type_of(&bad),
            Err(TypeError::Incompatible(Type::INT, Type::BOOL))
        );
        // Source type must match the term's type.
        let bad2 = Term::int(1).cast(Type::BOOL, p, Type::DYN);
        assert!(matches!(type_of(&bad2), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn blame_has_its_annotated_type() {
        let p = Label::new(0);
        assert_eq!(type_of(&Term::Blame(p, Type::BOOL)), Ok(Type::BOOL));
    }

    #[test]
    fn unique_type_without_blame() {
        // Every well-typed term not containing blame has a unique
        // type; our checker is syntax-directed so this is immediate,
        // but we verify the canonical example.
        let id_dyn = Term::lam("x", Type::DYN, Term::var("x"));
        assert_eq!(type_of(&id_dyn), Ok(Type::fun(Type::DYN, Type::DYN)));
    }

    #[test]
    fn fix_typing() {
        // fix f (x:Int):Int. f x   — well typed, type Int → Int.
        let t = Term::fix(
            "f",
            "x",
            Type::INT,
            Type::INT,
            Term::var("f").app(Term::var("x")),
        );
        assert_eq!(type_of(&t), Ok(Type::fun(Type::INT, Type::INT)));
        // Body type must match the declared codomain.
        let bad = Term::fix("f", "x", Type::INT, Type::BOOL, Term::var("x"));
        assert!(matches!(type_of(&bad), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn let_and_if() {
        let t = Term::let_(
            "x",
            Term::int(2),
            Term::ite(
                Term::op2(Op::Lt, Term::var("x"), Term::int(3)),
                Term::var("x"),
                Term::int(0),
            ),
        );
        assert_eq!(type_of(&t), Ok(Type::INT));
        let bad = Term::ite(Term::int(1), Term::int(2), Term::int(3));
        assert!(matches!(type_of(&bad), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn shadowing_uses_innermost_binding() {
        let t = Term::lam("x", Type::INT, Term::lam("x", Type::BOOL, Term::var("x")));
        assert_eq!(
            type_of(&t),
            Ok(Type::fun(Type::INT, Type::fun(Type::BOOL, Type::BOOL)))
        );
    }
}
