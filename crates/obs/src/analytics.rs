//! Blame analytics: deterministic folds of [`AuditRecord`] streams
//! into a corpus-level [`BlameReport`].
//!
//! A single run's blame label says *this* boundary failed; a fold over
//! thousands of runs says which boundary fails *most*, which source
//! shapes leak cast frames on the λB/λC machines, and where fuel and
//! deadlines go — the aggregate view that makes blame actionable (and
//! the workload the ROADMAP's observability item opens).
//!
//! The fold is plain `BTreeMap` bookkeeping: deterministic iteration
//! order, exact counts — a sequential oracle folding the same records
//! produces byte-identical reports, which `examples/analytics.rs`
//! asserts against a real pool.

use std::collections::BTreeMap;
use std::fmt;

use crate::audit::{AuditOutcome, AuditRecord};

/// Collapses a source text to its structural family: every ASCII
/// digit is stripped, so generated variants that differ only in
/// constants (`bc_testkit::sources::mixed` varies exactly those) fold
/// to one key. Whitespace is collapsed too, keeping keys single-line.
pub fn shape_key(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let mut last_space = false;
    for c in source.chars() {
        if c.is_ascii_digit() {
            continue;
        }
        if c.is_whitespace() {
            if !last_space && !out.is_empty() {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out.truncate(out.trim_end().len());
    out
}

/// Running min/max/sum/count of one shape's peak-cast-frame samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeakDist {
    /// Samples folded in.
    pub count: u64,
    /// Smallest observed peak.
    pub min: u64,
    /// Largest observed peak.
    pub max: u64,
    /// Sum of peaks (divide by `count` for the mean).
    pub sum: u64,
}

impl PeakDist {
    fn observe(&mut self, peak: u64) {
        if self.count == 0 {
            self.min = peak;
            self.max = peak;
        } else {
            self.min = self.min.min(peak);
            self.max = self.max.max(peak);
        }
        self.count += 1;
        self.sum += peak;
    }

    /// Mean peak (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The live fold. Feed it records with [`BlameAnalytics::observe`]
/// (singly or via [`BlameAnalytics::observe_all`]), read it with
/// [`BlameAnalytics::report`].
#[derive(Debug, Clone, Default)]
pub struct BlameAnalytics {
    records: u64,
    outcomes: BTreeMap<&'static str, u64>,
    /// blame label display form → (cast site, count).
    blame: BTreeMap<String, (u32, u64)>,
    fuel_by_shape: BTreeMap<String, u64>,
    deadline_by_shape: BTreeMap<String, u64>,
    /// (shape, engine) → peak-cast-frame distribution, machine
    /// engines only (small-step engines report no space metrics).
    cast_peaks: BTreeMap<(String, String), PeakDist>,
}

impl BlameAnalytics {
    /// An empty fold.
    pub fn new() -> BlameAnalytics {
        BlameAnalytics::default()
    }

    /// Folds one record in.
    pub fn observe(&mut self, record: &AuditRecord) {
        self.records += 1;
        *self.outcomes.entry(record.outcome.as_str()).or_default() += 1;
        match record.outcome {
            AuditOutcome::Blame => {
                let label = record.blame_label.clone().unwrap_or_default();
                let entry = self
                    .blame
                    .entry(label)
                    .or_insert((record.cast_site.unwrap_or(u32::MAX), 0));
                entry.1 += 1;
            }
            AuditOutcome::FuelExhausted => {
                *self.fuel_by_shape.entry(record.shape.clone()).or_default() += 1;
            }
            AuditOutcome::DeadlineExceeded => {
                *self
                    .deadline_by_shape
                    .entry(record.shape.clone())
                    .or_default() += 1;
            }
            _ => {}
        }
        // Space peaks are a property of runs, not failures: every
        // record that executed machine steps contributes.
        if record.peak_frames > 0 {
            self.cast_peaks
                .entry((record.shape.clone(), record.engine.to_owned()))
                .or_default()
                .observe(record.peak_cast_frames);
        }
    }

    /// Folds a batch in.
    pub fn observe_all<'a>(&mut self, records: impl IntoIterator<Item = &'a AuditRecord>) {
        for record in records {
            self.observe(record);
        }
    }

    /// Records folded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Exact per-label blame counts, in label order — the map the
    /// sequential-oracle comparison checks wholesale.
    pub fn blame_counts(&self) -> BTreeMap<String, u64> {
        self.blame
            .iter()
            .map(|(label, &(_, count))| (label.clone(), count))
            .collect()
    }

    /// The corpus-level report, keeping the `top_k` most-blamed
    /// labels (ties break by label, so the report is deterministic).
    pub fn report(&self, top_k: usize) -> BlameReport {
        let mut top_blame: Vec<BlameEntry> = self
            .blame
            .iter()
            .map(|(label, &(site, count))| BlameEntry {
                label: label.clone(),
                cast_site: site,
                count,
            })
            .collect();
        top_blame.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.label.cmp(&b.label)));
        top_blame.truncate(top_k);
        BlameReport {
            records: self.records,
            outcomes: self
                .outcomes
                .iter()
                .map(|(&k, &v)| (k.to_owned(), v))
                .collect(),
            top_blame,
            fuel_by_shape: self
                .fuel_by_shape
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            deadline_by_shape: self
                .deadline_by_shape
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            cast_peaks: self
                .cast_peaks
                .iter()
                .map(|((shape, engine), &dist)| (shape.clone(), engine.clone(), dist))
                .collect(),
        }
    }
}

/// One blamed boundary in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameEntry {
    /// The label's display form (`"p3"`, `"¬p1"`, …).
    pub label: String,
    /// The label's allocation id (`u32::MAX` when unknown).
    pub cast_site: u32,
    /// Runs that blamed it.
    pub count: u64,
}

/// The rendered corpus view: everything sorted, everything exact.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// Records folded.
    pub records: u64,
    /// Outcome name → count, in name order.
    pub outcomes: Vec<(String, u64)>,
    /// Most-blamed labels, descending by count.
    pub top_blame: Vec<BlameEntry>,
    /// Fuel-exhaustion counts by source shape.
    pub fuel_by_shape: Vec<(String, u64)>,
    /// Deadline-miss counts by source shape.
    pub deadline_by_shape: Vec<(String, u64)>,
    /// (shape, engine, peak-cast-frame distribution) for every
    /// machine-run family — λB/λC peaks grow with the program where
    /// λS stays flat.
    pub cast_peaks: Vec<(String, String, PeakDist)>,
}

/// Truncates a shape key for display.
fn clip(shape: &str) -> String {
    const MAX: usize = 48;
    if shape.chars().count() <= MAX {
        shape.to_owned()
    } else {
        let head: String = shape.chars().take(MAX).collect();
        format!("{head}…")
    }
}

impl fmt::Display for BlameReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "blame report over {} records", self.records)?;
        writeln!(f, "  outcomes:")?;
        for (outcome, count) in &self.outcomes {
            writeln!(f, "    {outcome:<18} {count}")?;
        }
        if !self.top_blame.is_empty() {
            writeln!(f, "  top blamed boundaries:")?;
            for entry in &self.top_blame {
                writeln!(
                    f,
                    "    {:<6} (cast site {:>3})  {} runs",
                    entry.label, entry.cast_site, entry.count
                )?;
            }
        }
        if !self.fuel_by_shape.is_empty() {
            writeln!(f, "  fuel exhaustion by shape:")?;
            for (shape, count) in &self.fuel_by_shape {
                writeln!(f, "    {count:>6}  {}", clip(shape))?;
            }
        }
        if !self.deadline_by_shape.is_empty() {
            writeln!(f, "  deadline misses by shape:")?;
            for (shape, count) in &self.deadline_by_shape {
                writeln!(f, "    {count:>6}  {}", clip(shape))?;
            }
        }
        if !self.cast_peaks.is_empty() {
            writeln!(f, "  peak cast frames by (shape, engine):")?;
            for (shape, engine, dist) in &self.cast_peaks {
                writeln!(
                    f,
                    "    {engine:<8} min {:>3} / mean {:>7.2} / max {:>3}  ({} runs)  {}",
                    dist.min,
                    dist.mean(),
                    dist.max,
                    dist.count,
                    clip(shape)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blame_record(label: &str, site: u32, shape: &str) -> AuditRecord {
        AuditRecord {
            seq: 0,
            worker: 0,
            epoch: 1,
            engine: "MachineS",
            outcome: AuditOutcome::Blame,
            blame_label: Some(label.to_owned()),
            cast_site: Some(site),
            steps: 20,
            peak_frames: 3,
            peak_cast_frames: 1,
            compiled: false,
            latency_ns: 5_000,
            queue_wait_ns: 500,
            shape: shape.to_owned(),
        }
    }

    #[test]
    fn shape_key_collapses_constant_variants() {
        let a = shape_key("let f = fun x => x + 7 in f true");
        let b = shape_key("let f = fun x => x + 23 in f true");
        assert_eq!(a, b);
        assert_eq!(a, "let f = fun x => x + in f true");
        assert_ne!(a, shape_key("let f = fun x => x * 7 in f true"));
    }

    #[test]
    fn top_blame_sorts_by_count_then_label() {
        let mut fold = BlameAnalytics::new();
        for _ in 0..3 {
            fold.observe(&blame_record("p2", 2, "s"));
        }
        for label in ["p1", "p3"] {
            fold.observe(&blame_record(label, 1, "s"));
        }
        let report = fold.report(2);
        assert_eq!(report.records, 5);
        assert_eq!(report.top_blame.len(), 2);
        assert_eq!(report.top_blame[0].label, "p2");
        assert_eq!(report.top_blame[0].count, 3);
        assert_eq!(report.top_blame[1].label, "p1");
        assert_eq!(
            fold.blame_counts().into_iter().collect::<Vec<_>>(),
            vec![
                ("p1".to_owned(), 1),
                ("p2".to_owned(), 3),
                ("p3".to_owned(), 1)
            ]
        );
        // The fold is order-independent: the same records in another
        // order produce the same report.
        let mut reversed = BlameAnalytics::new();
        for label in ["p3", "p1"] {
            reversed.observe(&blame_record(label, 1, "s"));
        }
        for _ in 0..3 {
            reversed.observe(&blame_record("p2", 2, "s"));
        }
        assert_eq!(reversed.report(2), report);
    }

    #[test]
    fn failure_breakdowns_key_by_shape() {
        let mut fold = BlameAnalytics::new();
        let mut fuel = blame_record("", 0, "letrec spin (n : Int) : Int = spin (n + ) in spin");
        fuel.outcome = AuditOutcome::FuelExhausted;
        fuel.blame_label = None;
        fuel.cast_site = None;
        fold.observe(&fuel);
        fold.observe(&fuel);
        let report = fold.report(5);
        assert_eq!(report.fuel_by_shape.len(), 1);
        assert_eq!(report.fuel_by_shape[0].1, 2);
        assert!(report.top_blame.is_empty());
        // Machine runs contribute their cast peaks keyed by engine.
        assert_eq!(report.cast_peaks.len(), 1);
        let (_, engine, dist) = &report.cast_peaks[0];
        assert_eq!(engine, "MachineS");
        assert_eq!(dist.count, 2);
    }
}
