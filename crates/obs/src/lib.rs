//! Observability substrate for the blame-coercion serving stack.
//!
//! Everything the pool's internal counters know — job outcomes, blame
//! labels, cast-frame peaks, queue and latency behaviour — is only
//! useful to an operator (or a researcher) if it can leave the
//! process. This crate is the dependency-free layer that gets it out,
//! in three pieces:
//!
//! * [`metrics`] — lock-free [`Counter`]/[`Gauge`] primitives over
//!   `AtomicU64`, a fixed-bucket log2 [`Histogram`] (wait-free record,
//!   mergeable snapshots), and a [`Registry`] that names instruments
//!   and renders a Prometheus-style text exposition;
//! * [`audit`] — a bounded, non-blocking [`AuditSink`] ring buffer
//!   emitting one machine-parseable [`AuditRecord`] per resolved job,
//!   with deterministic dropped-record accounting under overload;
//! * [`analytics`] — [`BlameAnalytics`], a deterministic fold of audit
//!   records into a [`BlameReport`]: top-K failing blame labels,
//!   per-source-shape cast-frame peak distributions (the λB-vs-λS
//!   space story, measured across a corpus), and fuel/deadline
//!   breakdowns.
//!
//! The crate deliberately depends on nothing — not even the syntax
//! crates: records carry strings and integers, so the substrate can be
//! reused by any layer (and never pulls arena ids across threads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod audit;
pub mod metrics;

pub use analytics::{shape_key, BlameAnalytics, BlameReport};
pub use audit::{AuditOutcome, AuditRecord, AuditSink};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
