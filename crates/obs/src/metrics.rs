//! Lock-free metric primitives and the exposition registry.
//!
//! Three instrument kinds, all readable and writable from any thread
//! without locks on the record path:
//!
//! * [`Counter`] — a monotone `u64` (wait-free `fetch_add`);
//! * [`Gauge`] — an `f64` that goes up and down (stored as bits in an
//!   `AtomicU64`; set/read are single atomic ops);
//! * [`Histogram`] — a fixed array of 64 log2 buckets. Recording is
//!   wait-free (one `fetch_add` on the value's bucket, one on the
//!   running sum); reading takes a [`HistogramSnapshot`], and
//!   snapshots merge by bucket-wise addition.
//!
//! # Consistency contract
//!
//! Writers publish with `Release` and readers load with `Acquire` —
//! the same discipline `bc_syntax::slab` uses to publish rows before
//! watermarks — so a snapshot never sees a torn single cell and every
//! count it reads was fully recorded. Across *distinct* cells (two
//! buckets, or a bucket and the sum) there is no global ordering:
//! a snapshot taken while recorders are mid-flight is a bucket-wise
//! valid, monotone view that may straddle in-progress records. Once
//! recorders quiesce (join, or reach a barrier), a snapshot is exact:
//! `count()` equals the number of `record` calls and `sum()` their
//! total — the property the concurrency tests pin.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter. Cloning the `Arc` handle shares the cell.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Release);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A gauge: an `f64` that moves in both directions, stored as raw bits
/// in one `AtomicU64` (never torn).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Release);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]`, and the last bucket absorbs
/// everything from `2^62` up (an upper bound no latency or step count
/// reaches).
pub const BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram of `u64` samples (latencies in
/// nanoseconds, step counts, depths — anything non-negative).
///
/// Recording is wait-free and allocation-free; see the
/// [module docs](self) for the snapshot consistency contract.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (BUCKETS - 1).min(64 - value.leading_zeros() as usize)
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A histogram with every bucket at zero.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample (wait-free: two `fetch_add`s).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Release);
        self.sum.fetch_add(value, Ordering::Release);
    }

    /// A point-in-time view (see the [module docs](self) for what
    /// "point in time" means under concurrent recorders).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Acquire)),
            sum: self.sum.load(Ordering::Acquire),
        }
    }

    /// Folds a snapshot (from this or any other histogram) into this
    /// one — how per-shard histograms merge into a pool-wide view.
    pub fn absorb(&self, snapshot: &HistogramSnapshot) {
        for (bucket, &count) in self.buckets.iter().zip(&snapshot.buckets) {
            if count > 0 {
                bucket.fetch_add(count, Ordering::Release);
            }
        }
        self.sum.fetch_add(snapshot.sum, Ordering::Release);
    }
}

/// An owned, mergeable view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    sum: u64,
}

impl HistogramSnapshot {
    /// Total samples recorded (the sum over all buckets — there is no
    /// separate count cell to drift from the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded sample values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Samples in bucket `i` (values `≤` [`HistogramSnapshot::bound`]).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The inclusive upper bound of bucket `i`.
    pub fn bound(i: usize) -> u64 {
        bucket_bound(i)
    }

    /// Bucket-wise merge with another snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A registered series: instrument + name + help + label pairs.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// Names instruments and renders them as a Prometheus-style text
/// exposition (`# HELP` / `# TYPE` header once per metric name, one
/// sample line per series; histograms render cumulative
/// `_bucket{le="…"}` lines plus `_sum` and `_count`).
///
/// Registration takes a short mutex (it happens at setup time, and
/// the exposition render walks the same list); the instruments handed
/// back are `Arc`s whose record paths never touch the registry again.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a counter series and returns its handle. Register
    /// every series of one metric name with the same `help`; the
    /// exposition emits the header once, at the first series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let counter = Arc::new(Counter::new());
        self.push(
            name,
            help,
            labels,
            Instrument::Counter(Arc::clone(&counter)),
        );
        counter
    }

    /// Registers an *existing* counter cell as a series — for
    /// counters owned elsewhere (e.g. the [`crate::AuditSink`]'s drop
    /// counter), so one cell is both the live accounting and the
    /// rendered metric.
    pub fn attach_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &Arc<Counter>,
    ) {
        self.push(name, help, labels, Instrument::Counter(Arc::clone(counter)));
    }

    /// Registers a gauge series and returns its handle.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let gauge = Arc::new(Gauge::new());
        self.push(name, help, labels, Instrument::Gauge(Arc::clone(&gauge)));
        gauge
    }

    /// Registers a histogram series and returns its handle.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let histogram = Arc::new(Histogram::new());
        self.push(
            name,
            help,
            labels,
            Instrument::Histogram(Arc::clone(&histogram)),
        );
        histogram
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], instrument: Instrument) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            instrument,
        });
    }

    /// Renders every registered instrument in Prometheus text format.
    /// Series are grouped by metric name (first-registration order);
    /// empty histogram buckets are elided (the `le` bounds that do
    /// appear stay sorted, and `+Inf`, `_sum`, `_count` always
    /// render).
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut done: Vec<&str> = Vec::new();
        for (i, entry) in entries.iter().enumerate() {
            if done.contains(&entry.name.as_str()) {
                continue;
            }
            done.push(&entry.name);
            writeln!(out, "# HELP {} {}", entry.name, entry.help).expect("string writes");
            writeln!(
                out,
                "# TYPE {} {}",
                entry.name,
                entry.instrument.type_name()
            )
            .expect("string writes");
            for series in entries[i..].iter().filter(|e| e.name == entry.name) {
                render_series(&mut out, series);
            }
        }
        out
    }
}

/// Formats `{k="v",…}` (empty string when there are no labels); the
/// extra pairs are appended after the series' own labels.
fn label_block(labels: &[(String, String)], extra: &[(&str, String)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    let mut push = |out: &mut String, key: &str, value: &str| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", escape_label(value));
    };
    for (k, v) in labels {
        push(&mut out, k, v);
    }
    for (k, v) in extra {
        push(&mut out, k, v);
    }
    out.push('}');
    out
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_series(out: &mut String, entry: &Entry) {
    match &entry.instrument {
        Instrument::Counter(c) => {
            let labels = label_block(&entry.labels, &[]);
            writeln!(out, "{}{labels} {}", entry.name, c.get()).expect("string writes");
        }
        Instrument::Gauge(g) => {
            let labels = label_block(&entry.labels, &[]);
            writeln!(out, "{}{labels} {}", entry.name, g.get()).expect("string writes");
        }
        Instrument::Histogram(h) => {
            let snapshot = h.snapshot();
            let mut cumulative = 0u64;
            for i in 0..BUCKETS {
                let count = snapshot.bucket(i);
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let le = label_block(&entry.labels, &[("le", bucket_bound(i).to_string())]);
                writeln!(out, "{}_bucket{le} {cumulative}", entry.name).expect("string writes");
            }
            let inf = label_block(&entry.labels, &[("le", "+Inf".to_owned())]);
            writeln!(out, "{}_bucket{inf} {cumulative}", entry.name).expect("string writes");
            let labels = label_block(&entry.labels, &[]);
            writeln!(out, "{}_sum{labels} {}", entry.name, snapshot.sum()).expect("string writes");
            writeln!(out, "{}_count{labels} {}", entry.name, snapshot.count())
                .expect("string writes");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value's bucket bound covers it, and the previous
        // bucket's bound does not.
        for value in [0u64, 1, 2, 3, 7, 8, 1_000_000, u64::MAX / 2] {
            let i = bucket_of(value);
            assert!(value <= bucket_bound(i), "{value} exceeds its bound");
            if i > 0 {
                assert!(value > bucket_bound(i - 1), "{value} fits a lower bucket");
            }
        }
    }

    #[test]
    fn histogram_counts_and_sums_exactly() {
        let h = Histogram::new();
        let values = [0u64, 1, 1, 5, 1024, 1_000_000];
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), values.len() as u64);
        assert_eq!(s.sum(), values.iter().sum::<u64>());
        // Merge doubles everything.
        let mut merged = s.clone();
        merged.merge(&s);
        assert_eq!(merged.count(), 2 * values.len() as u64);
        assert_eq!(merged.sum(), 2 * values.iter().sum::<u64>());
    }

    #[test]
    fn render_groups_series_and_accumulates_buckets() {
        let registry = Registry::new();
        let a = registry.counter("jobs_total", "Jobs by outcome.", &[("outcome", "value")]);
        let b = registry.counter("jobs_total", "Jobs by outcome.", &[("outcome", "blame")]);
        let g = registry.gauge("depth", "Queue depth.", &[]);
        let h = registry.histogram("latency_ns", "Latency.", &[]);
        a.add(3);
        b.inc();
        g.set(2.5);
        h.record(1);
        h.record(900);
        let text = registry.render();
        assert_eq!(text.matches("# HELP jobs_total").count(), 1);
        assert!(text.contains("jobs_total{outcome=\"value\"} 3"));
        assert!(text.contains("jobs_total{outcome=\"blame\"} 1"));
        assert!(text.contains("depth 2.5"));
        assert!(text.contains("latency_ns_bucket{le=\"1\"} 1"));
        // 900 lands in [512, 1023]; the cumulative count includes the
        // earlier bucket.
        assert!(text.contains("latency_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("latency_ns_sum 901"));
        assert!(text.contains("latency_ns_count 2"));
    }
}
