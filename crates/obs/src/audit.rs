//! The structured audit stream: one machine-parseable record per
//! resolved job, through a bounded ring that never blocks the
//! emitting (hot) path on a slow consumer.
//!
//! # Overload contract
//!
//! [`AuditSink::emit`] takes the ring's mutex for a push — never for
//! I/O — so an emitter waits at most for another push or for a drain's
//! O(1) buffer swap. When the ring is full the *oldest* record is
//! evicted (the live window tracks current traffic) and
//! [`AuditSink::dropped`] counts it; the accounting is deterministic:
//!
//! ```text
//! emitted() == len() + drained records + dropped()
//! ```
//!
//! holds at every quiescent point, exactly (asserted in
//! `tests/obs.rs`).

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::Counter;

/// How a job resolved, collapsed to the audit vocabulary (success is
/// one outcome; each failure mode is its own, because the analytics
/// fold breaks failures down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditOutcome {
    /// The program evaluated to a value (constant, function, or
    /// injection).
    Value,
    /// The program allocated blame to a cast — the paper's payload;
    /// [`AuditRecord::blame_label`] and [`AuditRecord::cast_site`]
    /// carry the label.
    Blame,
    /// The fuel bound was reached.
    FuelExhausted,
    /// A loaded term lied about its type.
    IllTyped,
    /// The source failed to lex, parse, or gradually type check.
    CompileError,
    /// The wall-clock deadline passed before the job finished.
    DeadlineExceeded,
    /// The submitter canceled the job.
    Canceled,
    /// The serving worker panicked mid-job (and respawned).
    WorkerPanicked,
    /// Backpressure refused the submission before it entered a queue.
    Rejected,
}

impl AuditOutcome {
    /// Every outcome, in a fixed order (registration order for the
    /// per-outcome counters).
    pub const ALL: [AuditOutcome; 9] = [
        AuditOutcome::Value,
        AuditOutcome::Blame,
        AuditOutcome::FuelExhausted,
        AuditOutcome::IllTyped,
        AuditOutcome::CompileError,
        AuditOutcome::DeadlineExceeded,
        AuditOutcome::Canceled,
        AuditOutcome::WorkerPanicked,
        AuditOutcome::Rejected,
    ];

    /// The snake-case wire name (metric label value and JSON field).
    pub fn as_str(self) -> &'static str {
        match self {
            AuditOutcome::Value => "value",
            AuditOutcome::Blame => "blame",
            AuditOutcome::FuelExhausted => "fuel_exhausted",
            AuditOutcome::IllTyped => "ill_typed",
            AuditOutcome::CompileError => "compile_error",
            AuditOutcome::DeadlineExceeded => "deadline_exceeded",
            AuditOutcome::Canceled => "canceled",
            AuditOutcome::WorkerPanicked => "worker_panicked",
            AuditOutcome::Rejected => "rejected",
        }
    }

    /// The position of this outcome in [`AuditOutcome::ALL`].
    pub fn index(self) -> usize {
        AuditOutcome::ALL
            .iter()
            .position(|&o| o == self)
            .expect("ALL is exhaustive")
    }
}

impl fmt::Display for AuditOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One resolved job, flattened to `Send + 'static` scalars and
/// strings — no arena ids, no term trees, nothing session-bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Global emission sequence number (gaps mean dropped records).
    pub seq: u64,
    /// Worker that resolved the job.
    pub worker: usize,
    /// Base epoch the worker served under.
    pub epoch: u64,
    /// Engine slug (`"MachineS"`, `"LambdaB"`, …). A static string:
    /// the engine set is closed, so the per-job record costs no
    /// allocation here.
    pub engine: &'static str,
    /// How the job resolved.
    pub outcome: AuditOutcome,
    /// The blamed label's display form (e.g. `"p1"` or `"¬p1"`), when
    /// the outcome is [`AuditOutcome::Blame`].
    pub blame_label: Option<String>,
    /// The blamed cast site: the label's allocation id, stable across
    /// workers because labels are minted per-compile in source order —
    /// structurally identical sources agree on it everywhere.
    pub cast_site: Option<u32>,
    /// Machine/reduction steps actually executed.
    pub steps: u64,
    /// Peak continuation frames (machine engines; 0 otherwise).
    pub peak_frames: u64,
    /// Peak *cast* frames — the λB/λC space-leak signal the paper's
    /// λS design eliminates (machine engines; 0 otherwise).
    pub peak_cast_frames: u64,
    /// Whether the job travelled pre-compiled (no parse on the
    /// worker).
    pub compiled: bool,
    /// Wall-clock nanoseconds from submission to resolution.
    pub latency_ns: u64,
    /// Wall-clock nanoseconds the job waited before a worker first
    /// picked it up (0 for rejections).
    pub queue_wait_ns: u64,
    /// The source's digit-stripped shape key (see
    /// [`crate::shape_key`]): one key per structural family.
    pub shape: String,
}

/// Minimal JSON string escaping (quote, backslash, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl AuditRecord {
    /// The record as one JSON object (no trailing newline) — the line
    /// format [`AuditSink::drain_to`] writes. Hand-rolled: the build
    /// is offline, and the schema is flat scalars.
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"seq\":{},\"worker\":{},\"epoch\":{},\"engine\":\"{}\",\"outcome\":\"{}\"",
            self.seq,
            self.worker,
            self.epoch,
            escape_json(self.engine),
            self.outcome
        );
        if let Some(label) = &self.blame_label {
            let _ = write!(out, ",\"blame_label\":\"{}\"", escape_json(label));
        }
        if let Some(site) = self.cast_site {
            let _ = write!(out, ",\"cast_site\":{site}");
        }
        let _ = write!(
            out,
            ",\"steps\":{},\"peak_frames\":{},\"peak_cast_frames\":{},\"compiled\":{},\
             \"latency_ns\":{},\"queue_wait_ns\":{},\"shape\":\"{}\"}}",
            self.steps,
            self.peak_frames,
            self.peak_cast_frames,
            self.compiled,
            self.latency_ns,
            self.queue_wait_ns,
            escape_json(&self.shape)
        );
        out
    }
}

/// The bounded audit ring. See the [module docs](self) for the
/// overload contract.
#[derive(Debug)]
pub struct AuditSink {
    ring: Mutex<VecDeque<AuditRecord>>,
    capacity: usize,
    seq: AtomicU64,
    /// The drop count is itself a [`Counter`] so it can be registered
    /// in a [`crate::Registry`] (via [`Registry::attach_counter`]) and
    /// rendered alongside the metrics it explains.
    ///
    /// [`Registry::attach_counter`]: crate::Registry::attach_counter
    dropped: Arc<Counter>,
}

impl AuditSink {
    /// A sink retaining at most `capacity` undrained records
    /// (`capacity` is clamped to ≥ 1).
    pub fn new(capacity: usize) -> AuditSink {
        AuditSink {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: Arc::new(Counter::new()),
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Emits one record, stamping its sequence number. Never blocks on
    /// a consumer: a full ring evicts its oldest record (counted in
    /// [`AuditSink::dropped`]) and the push proceeds.
    pub fn emit(&self, mut record: AuditRecord) {
        record.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.inc();
        }
        ring.push_back(record);
    }

    /// Records emitted so far (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Records evicted without being drained.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The drop count's live [`Counter`] cell, for registering the
    /// sink's loss accounting in a [`crate::Registry`].
    pub fn dropped_cell(&self) -> Arc<Counter> {
        Arc::clone(&self.dropped)
    }

    /// Undrained records currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every buffered record (oldest first), leaving the ring
    /// empty. O(1) under the lock — the buffer is swapped out whole.
    pub fn drain(&self) -> Vec<AuditRecord> {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *ring).into()
    }

    /// Drains into `out` as JSON lines (one [`AuditRecord::to_json`]
    /// per line), returning how many records were written. The I/O
    /// happens *after* the buffer swap — a slow writer never holds the
    /// ring's lock, so emitters never wait on it.
    ///
    /// # Errors
    ///
    /// Propagates the writer's error; records already taken from the
    /// ring are lost with it (the audit stream is lossy by contract —
    /// prefer an infallible writer for exact capture).
    pub fn drain_to(&self, out: &mut dyn Write) -> io::Result<usize> {
        let records = self.drain();
        for record in &records {
            writeln!(out, "{}", record.to_json())?;
        }
        Ok(records.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(shape: &str) -> AuditRecord {
        AuditRecord {
            seq: 0,
            worker: 0,
            epoch: 1,
            engine: "MachineS",
            outcome: AuditOutcome::Value,
            blame_label: None,
            cast_site: None,
            steps: 10,
            peak_frames: 2,
            peak_cast_frames: 0,
            compiled: true,
            latency_ns: 1_000,
            queue_wait_ns: 100,
            shape: shape.to_owned(),
        }
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_exactly() {
        let sink = AuditSink::new(3);
        for i in 0..10 {
            sink.emit(record(&format!("shape-{i}")));
        }
        assert_eq!(sink.emitted(), 10);
        assert_eq!(sink.dropped(), 7);
        let kept = sink.drain();
        assert_eq!(kept.len(), 3);
        // The live window is the newest records, with their original
        // sequence numbers intact.
        assert_eq!(
            kept.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        // Draining resets the window but not the accounting.
        sink.emit(record("after"));
        assert_eq!(sink.emitted(), 11);
        assert_eq!(sink.dropped(), 7);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn json_lines_are_flat_and_escaped() {
        let sink = AuditSink::new(8);
        let mut r = record("let f = fun x => x + \"q\" in f");
        r.outcome = AuditOutcome::Blame;
        r.blame_label = Some("¬p1".to_owned());
        r.cast_site = Some(1);
        sink.emit(r);
        let mut buf = Vec::new();
        assert_eq!(sink.drain_to(&mut buf).expect("vec writes"), 1);
        let line = String::from_utf8(buf).expect("utf8");
        assert!(line.ends_with('\n'));
        assert!(line.contains("\"outcome\":\"blame\""));
        assert!(line.contains("\"blame_label\":\"¬p1\""));
        assert!(line.contains("\"cast_site\":1"));
        assert!(line.contains("\\\"q\\\""));
        assert_eq!(sink.len(), 0);
    }
}
